// Package experiments contains one runner per table and figure in the
// paper's evaluation (Tables 1-3, Figures 5-7), plus ablations. Each runner
// builds its workload from the synthetic datasets, executes both systems
// (DeTA and the FFL baseline) or the attack grid, and renders the same rows
// or series the paper reports. cmd/deta-bench and the root bench_test.go
// drive this package.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result in the paper's row/column format.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is one plotted line (e.g. DETA-Loss over training rounds).
type Series struct {
	Name string
	Y    []float64
}

// Figure is a set of series over a shared X axis (training rounds).
type Figure struct {
	Title  string
	XLabel string
	X      []float64
	Series []Series
	Notes  []string
}

// Render writes the figure as a column-per-series text table.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", f.Title)
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	rows := make([][]string, len(f.X))
	for i, x := range f.X {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%.4f", s.Y[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows[i] = row
	}
	t := Table{Title: "", Header: header, Rows: rows}
	// Reuse table alignment without the banner line.
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(t.Header)
	for _, row := range rows {
		line(row)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// bucketize assigns value v to the first bucket whose upper bound exceeds
// it; bounds are upper edges, the last bucket is unbounded.
func bucketize(v float64, upper []float64) int {
	for i, u := range upper {
		if v < u {
			return i
		}
	}
	return len(upper)
}

// percent formats a count as a percentage of total.
func percent(count, total int) string {
	if total == 0 {
		return "0%"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(count)/float64(total))
}
