package experiments

import (
	"fmt"

	"deta/internal/attack"
	"deta/internal/dataset"
	"deta/internal/nn"
)

// AblationLabelInference measures iDLG's analytic label-inference accuracy
// under each breach scenario. Label leakage is a privacy harm on its own
// (it reveals *what* a party trained on even if the image cannot be
// reconstructed); this ablation shows DeTA's transforms also destroy the
// final-layer structure the sign rule depends on.
func AblationLabelInference(sc Scale) (*Table, error) {
	side := sc.AttackSide
	spec := dataset.Spec{Name: "labels", C: 3, H: side, W: side, Classes: 10}
	data := dataset.Make(spec, sc.AttackImages*4, []byte("labels-data"))
	net := nn.LeNetDLG(3, side, side, spec.Classes)
	net.Init([]byte("labels-model"))
	oracle := attack.NewOracle(net)

	correct := map[string]int{}
	total := 0
	for i := 0; i < data.Len(); i++ {
		sample := data.At(i)
		grad, err := oracle.VictimGradient(sample.X, sample.Label)
		if err != nil {
			return nil, err
		}
		total++
		for _, scenario := range attack.TableScenarios {
			obs, err := attack.Observe(grad, scenario, []byte("labels-mapper"), []byte(fmt.Sprintf("r%d", i)))
			if err != nil {
				return nil, err
			}
			if attack.InferLabeliDLG(oracle, obs) == sample.Label {
				correct[scenario.Name]++
			}
		}
	}
	t := &Table{
		Title:  "Ablation: iDLG label-inference accuracy under breach scenarios (10 classes; chance = 10%)",
		Header: []string{"Scenario", "LabelAccuracy"},
	}
	for _, scenario := range attack.TableScenarios {
		t.Rows = append(t.Rows, []string{scenario.Name, percent(correct[scenario.Name], total)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d single-example gradients; inference uses the final-layer sign rule of Zhao et al.", total),
		"with a full in-order gradient the rule is exact; DeTA's partition/shuffle reduce it toward chance")
	return t, nil
}
