package experiments

import (
	"fmt"
	"time"

	"deta/internal/agg"
	"deta/internal/attest"
	"deta/internal/core"
	"deta/internal/rng"
	"deta/internal/sev"
	"deta/internal/tensor"
)

// ChurnSweep exercises the round lifecycle manager under party churn: for
// each (parties, dropout-rate) cell it drives an aggregator with a round
// deadline and majority quorum on a fake clock, drops each party's upload
// independently per round, and counts how rounds end — fused with full
// participation, fused degraded (quorum but not everyone), or abandoned
// below quorum at the deadline. It quantifies the paper's §8.2 straggler
// argument: liveness-bounded rounds trade completeness for progress
// instead of stalling the federation.
func ChurnSweep(sc Scale) (*Table, error) {
	rounds := sc.MNISTRounds
	if rounds <= 0 {
		rounds = 10
	}
	partyGrid := []int{4, 8}
	dropGrid := []float64{0, 0.25, 0.5}

	t := &Table{
		Title:  fmt.Sprintf("Round lifecycle under churn (majority quorum, %d rounds, per-round i.i.d. dropout)", rounds),
		Header: []string{"Parties", "Dropout", "Rounds", "FusedFull", "FusedDegraded", "Abandoned"},
	}
	for _, parties := range partyGrid {
		for _, drop := range dropGrid {
			full, degraded, abandoned, err := churnCell(parties, drop, rounds)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprint(parties),
				fmt.Sprintf("%.2f", drop),
				fmt.Sprint(rounds),
				fmt.Sprint(full),
				fmt.Sprint(degraded),
				fmt.Sprint(abandoned),
			})
		}
	}
	t.Notes = append(t.Notes,
		"abandoned rounds fail typed (ErrRoundAbandoned); parties skip them instead of blocking",
		"degraded rounds fuse the quorum at deadline and cut stragglers after the grace window",
	)
	return t, nil
}

// churnCell runs one grid cell on a single lifecycle-enabled aggregator.
// All timing is fake-clock-driven, so the sweep is deterministic and runs
// in microseconds per round regardless of the configured deadline.
func churnCell(parties int, dropout float64, rounds int) (full, degraded, abandoned int, err error) {
	vendor, err := sev.NewVendor()
	if err != nil {
		return 0, 0, 0, err
	}
	proxy := attest.NewProxy(vendor.RAS(), core.OVMF)
	platform, err := sev.NewPlatform("host/churn", vendor)
	if err != nil {
		return 0, 0, 0, err
	}
	cvm, err := platform.LaunchCVM(core.OVMF)
	if err != nil {
		return 0, 0, 0, err
	}
	if _, err := proxy.Provision("agg-churn", platform, cvm); err != nil {
		return 0, 0, 0, err
	}
	node, err := core.NewAggregatorNode("agg-churn", agg.IterativeAverage{}, cvm)
	if err != nil {
		return 0, 0, 0, err
	}
	clk := core.NewFakeClock(time.Unix(1_000_000, 0))
	node.SetClock(clk)
	const deadline = 30 * time.Second
	node.SetLifecycle(deadline, 2*time.Second)
	for i := 0; i < parties; i++ {
		node.Register(fmt.Sprintf("P%d", i+1))
	}
	node.SetQuorum(parties/2 + 1)
	node.SetRetention(1)

	st := rng.NewStream([]byte("churn-sweep"), fmt.Sprintf("p%d-d%.2f", parties, dropout))
	for round := 1; round <= rounds; round++ {
		uploaded := 0
		for i := 0; i < parties; i++ {
			if st.Float64() < dropout {
				continue // this party misses the round
			}
			if err := node.Upload(round, fmt.Sprintf("P%d", i+1), tensor.Vector{float64(round)}, 1); err != nil {
				return 0, 0, 0, fmt.Errorf("experiments: churn upload: %w", err)
			}
			uploaded++
		}
		clk.Advance(deadline) // the round hits its deadline
		done, gaveUp := node.RoundStatus(round)
		switch {
		case gaveUp:
			abandoned++
		case done:
			if err := node.Aggregate(round); err != nil {
				return 0, 0, 0, fmt.Errorf("experiments: churn aggregate: %w", err)
			}
			if uploaded == parties {
				full++
			} else {
				degraded++
			}
		default:
			return 0, 0, 0, fmt.Errorf("experiments: churn round %d neither complete nor abandoned at deadline", round)
		}
	}
	return full, degraded, abandoned, nil
}
