package experiments

import (
	"fmt"

	"deta/internal/agg"
	"deta/internal/core"
	"deta/internal/dataset"
	"deta/internal/fl"
	"deta/internal/nn"
)

// pairResult holds matched DeTA and FFL runs of one workload.
type pairResult struct {
	DeTA *fl.History
	FFL  *fl.History
}

// runPair trains the same workload under both systems with identical
// initial models, data splits, and hyperparameters — the comparison every
// figure makes.
func runPair(cfg fl.Config, build func() *nn.Network, train, test *dataset.Dataset,
	parties int, newAlg func() agg.Algorithm, aggregators int, splitSeed []byte,
	split func(*dataset.Dataset, int, []byte) []*dataset.Dataset) (*pairResult, error) {

	makeParties := func() []*fl.Party {
		shards := split(train, parties, splitSeed)
		ps := make([]*fl.Party, parties)
		for i := range ps {
			ps[i] = fl.NewParty(fmt.Sprintf("P%d", i+1), build, shards[i], cfg)
		}
		return ps
	}

	ffl := &fl.Session{
		Cfg: cfg, Algorithm: newAlg(), Build: build,
		Parties: makeParties(), Test: test, InitSeed: []byte("figure-init"),
	}
	histFFL, err := ffl.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: FFL run: %w", err)
	}

	deta := &core.Session{
		Cfg:   cfg,
		Opts:  core.Options{NumAggregators: aggregators, Shuffle: true, MapperSeed: []byte("figure-mapper")},
		Build: build, Parties: makeParties(), Test: test,
		InitSeed: []byte("figure-init"), NewAlgorithm: newAlg,
	}
	histDeTA, err := deta.Run()
	if err != nil {
		return nil, fmt.Errorf("experiments: DeTA run: %w", err)
	}
	return &pairResult{DeTA: histDeTA, FFL: histFFL}, nil
}

// figures builds the loss/accuracy figure and the latency figure from a
// matched pair, in the layout of Figures 5-7.
func (p *pairResult) figures(title string) (lossAcc, latency *Figure) {
	n := len(p.DeTA.Rounds)
	x := make([]float64, n)
	detaLoss := make([]float64, n)
	fflLoss := make([]float64, n)
	detaAcc := make([]float64, n)
	fflAcc := make([]float64, n)
	detaLat := make([]float64, n)
	fflLat := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = float64(i + 1)
		detaLoss[i] = p.DeTA.Rounds[i].TestLoss
		detaAcc[i] = p.DeTA.Rounds[i].Accuracy
		detaLat[i] = p.DeTA.Rounds[i].Cumulative.Seconds()
		if i < len(p.FFL.Rounds) {
			fflLoss[i] = p.FFL.Rounds[i].TestLoss
			fflAcc[i] = p.FFL.Rounds[i].Accuracy
			fflLat[i] = p.FFL.Rounds[i].Cumulative.Seconds()
		}
	}
	lossAcc = &Figure{
		Title: title + " — Loss/Accuracy", XLabel: "Round", X: x,
		Series: []Series{
			{Name: "DETA-Loss", Y: detaLoss},
			{Name: "FFL-Loss", Y: fflLoss},
			{Name: "DETA-Accuracy", Y: detaAcc},
			{Name: "FFL-Accuracy", Y: fflAcc},
		},
	}
	latency = &Figure{
		Title: title + " — Cumulative Latency (s)", XLabel: "Round", X: x,
		Series: []Series{
			{Name: "DETA", Y: detaLat},
			{Name: "FFL", Y: fflLat},
		},
	}
	overhead := 0.0
	if last := len(p.FFL.Rounds) - 1; last >= 0 && p.FFL.Rounds[last].Cumulative > 0 {
		overhead = p.DeTA.Final().Cumulative.Seconds()/p.FFL.Rounds[last].Cumulative.Seconds() - 1
	}
	latency.Notes = append(latency.Notes, fmt.Sprintf("DETA latency overhead vs FFL: %+.2fx", overhead))
	return lossAcc, latency
}

// mnistWorkload builds the Figure 5 MNIST setup.
func mnistWorkload(sc Scale) (fl.Config, func() *nn.Network, *dataset.Dataset, *dataset.Dataset) {
	side := sc.MNISTSide
	spec := dataset.Spec{Name: "mnist-syn", C: 1, H: side, W: side, Classes: 10}
	train, test := dataset.TrainTest(spec, 4*sc.SamplesPerParty, sc.TestSamples, []byte("fig5-data"))
	cfg := fl.Config{
		Mode: fl.FedAvg, Rounds: sc.MNISTRounds, LocalEpochs: sc.MNISTLocalEpochs,
		BatchSize: sc.BatchSize, LR: sc.LR, Momentum: sc.Momentum, Seed: []byte("fig5-cfg"),
	}
	build := func() *nn.Network { return nn.ConvNet8(1, side, side, 10) }
	return cfg, build, train, test
}

// Fig5a reproduces Figures 5a+5d: MNIST with Iterative Averaging, four
// parties, DeTA (three aggregators) vs FFL.
func Fig5a(sc Scale) (*Figure, *Figure, error) {
	cfg, build, train, test := mnistWorkload(sc)
	pair, err := runPair(cfg, build, train, test, 4,
		func() agg.Algorithm { return agg.IterativeAverage{} }, sc.Aggregators,
		[]byte("fig5-split"), dataset.SplitIID)
	if err != nil {
		return nil, nil, err
	}
	la, lat := pair.figures("Figure 5a/5d: MNIST Iterative Averaging (IID, 4 parties)")
	return la, lat, nil
}

// Fig5b reproduces Figures 5b+5e: MNIST with Coordinate Median.
func Fig5b(sc Scale) (*Figure, *Figure, error) {
	cfg, build, train, test := mnistWorkload(sc)
	pair, err := runPair(cfg, build, train, test, 4,
		func() agg.Algorithm { return agg.CoordinateMedian{} }, sc.Aggregators,
		[]byte("fig5-split"), dataset.SplitIID)
	if err != nil {
		return nil, nil, err
	}
	la, lat := pair.figures("Figure 5b/5e: MNIST Coordinate Median (IID, 4 parties)")
	return la, lat, nil
}

// Fig5c reproduces Figures 5c+5f: MNIST with Paillier-based fusion. The
// shared Paillier key plays the paper's trusted-key-broker role; both
// systems run the full encrypt/fuse/decrypt path, so the latency comparison
// captures the effect the paper reports (partitioning parallelizes the
// dominant crypto cost).
func Fig5c(sc Scale) (*Figure, *Figure, error) {
	cfg, build, train, test := mnistWorkload(sc)
	cfg.Rounds = sc.PaillierRounds
	pf, err := agg.NewPaillierFusion(sc.PaillierBits)
	if err != nil {
		return nil, nil, err
	}
	pair, err := runPair(cfg, build, train, test, 4,
		func() agg.Algorithm { return pf }, sc.Aggregators,
		[]byte("fig5-split"), dataset.SplitIID)
	if err != nil {
		return nil, nil, err
	}
	la, lat := pair.figures(fmt.Sprintf("Figure 5c/5f: MNIST Paillier Fusion (IID, 4 parties, %d-bit keys)", sc.PaillierBits))
	return la, lat, nil
}

// Fig6 reproduces Figure 6: CIFAR-10 with four and eight parties.
func Fig6(sc Scale) (*Figure, *Figure, error) {
	side := sc.CIFARSide
	spec := dataset.Spec{Name: "cifar10-syn", C: 3, H: side, W: side, Classes: 10}
	build := func() *nn.Network { return nn.ConvNet23(3, side, side, 10) }

	x := []float64{}
	var series []Series
	var latSeries []Series
	var notes []string
	for _, parties := range []int{4, 8} {
		train, test := dataset.TrainTest(spec, parties*sc.SamplesPerParty, sc.TestSamples, []byte("fig6-data"))
		cfg := fl.Config{
			Mode: fl.FedAvg, Rounds: sc.CIFARRounds, LocalEpochs: 1,
			BatchSize: sc.BatchSize, LR: sc.LR, Momentum: sc.Momentum, Seed: []byte("fig6-cfg"),
		}
		pair, err := runPair(cfg, build, train, test, parties,
			func() agg.Algorithm { return agg.IterativeAverage{} }, sc.Aggregators,
			[]byte("fig6-split"), dataset.SplitIID)
		if err != nil {
			return nil, nil, err
		}
		la, lat := pair.figures("")
		if len(x) == 0 {
			x = la.X
		}
		suffix := fmt.Sprintf("-%dP", parties)
		for _, s := range la.Series {
			series = append(series, Series{Name: s.Name + suffix, Y: s.Y})
		}
		for _, s := range lat.Series {
			latSeries = append(latSeries, Series{Name: s.Name + suffix, Y: s.Y})
		}
		notes = append(notes, fmt.Sprintf("%d parties: %s", parties, lat.Notes[0]))
	}
	lossAcc := &Figure{
		Title: "Figure 6a: CIFAR-10 Loss/Accuracy (IID, 4 vs 8 parties)", XLabel: "Round",
		X: x, Series: series,
	}
	latency := &Figure{
		Title: "Figure 6b: CIFAR-10 Cumulative Latency (s)", XLabel: "Round",
		X: x, Series: latSeries, Notes: notes,
	}
	return lossAcc, latency, nil
}

// Fig7 reproduces Figure 7: RVL-CDIP document classification with a
// pre-trained VGG-16 whose final three fully connected layers are replaced
// and trained (transfer learning), eight parties, non-IID 90-10 skew.
// "Pre-training" is simulated by a fixed-seed initialization of the frozen
// convolutional stack — the experiment measures convergence and latency of
// the transfer head under FL, which the substitution preserves.
func Fig7(sc Scale) (*Figure, *Figure, error) {
	spec := dataset.RVLCDIP
	build := func() *nn.Network {
		net, head := nn.VGG16Lite(1, spec.H, spec.W, spec.Classes)
		net.FreezePrefix(head)
		return net
	}
	train, test := dataset.TrainTest(spec, 8*sc.SamplesPerParty, sc.TestSamples, []byte("fig7-data"))
	cfg := fl.Config{
		Mode: fl.FedAvg, Rounds: sc.RVLRounds, LocalEpochs: 1,
		BatchSize: sc.BatchSize, LR: sc.LR, Momentum: sc.Momentum, Seed: []byte("fig7-cfg"),
	}
	skewSplit := func(d *dataset.Dataset, parties int, seed []byte) []*dataset.Dataset {
		return dataset.SplitSkew(d, parties, 2, 0.9, seed)
	}
	pair, err := runPair(cfg, build, train, test, 8,
		func() agg.Algorithm { return agg.IterativeAverage{} }, sc.Aggregators,
		[]byte("fig7-split"), skewSplit)
	if err != nil {
		return nil, nil, err
	}
	la, lat := pair.figures("Figure 7: RVL-CDIP VGG-16 transfer (non-IID 90-10, 8 parties)")
	la.Notes = append(la.Notes, "frozen VGG-16-lite convolutional stack simulates the paper's ImageNet pre-training")
	return la, lat, nil
}
