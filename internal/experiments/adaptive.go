package experiments

import (
	"fmt"

	"deta/internal/attack"
	"deta/internal/dataset"
	"deta/internal/nn"
)

// AblationKnownMapper evaluates the adaptive adversary of DESIGN.md §6 who
// has also stolen the model mapper. It quantifies the defense-in-depth
// layering: partition-only protection collapses when the mapper leaks,
// while shuffling (whose key never leaves the broker) still defeats the
// attack.
func AblationKnownMapper(sc Scale) (*Table, error) {
	side := sc.AttackSide
	spec := dataset.Spec{Name: "adaptive", C: 3, H: side, W: side, Classes: 20}
	data := dataset.Make(spec, sc.AttackImages, []byte("adaptive-data"))
	net := nn.LeNetDLG(3, side, side, spec.Classes)
	net.Init([]byte("adaptive-model"))
	oracle := attack.NewOracle(net)

	type cell struct{ recognizable, total int }
	grid := map[string]*cell{}
	scenarios := []attack.Scenario{attack.ScenarioP06, attack.ScenarioP06Shuffle}
	modes := []string{"mapper secret", "mapper leaked"}
	for _, s := range scenarios {
		for _, m := range modes {
			grid[s.Name+"/"+m] = &cell{}
		}
	}

	for i := 0; i < data.Len(); i++ {
		sample := data.At(i)
		grad, err := oracle.VictimGradient(sample.X, sample.Label)
		if err != nil {
			return nil, err
		}
		for _, scenario := range scenarios {
			for _, mode := range modes {
				var obs *attack.Observation
				if mode == "mapper leaked" {
					obs, err = attack.ObserveWithMapper(grad, scenario, []byte("adaptive-mapper"), []byte(fmt.Sprintf("r%d", i)))
				} else {
					obs, err = attack.Observe(grad, scenario, []byte("adaptive-mapper"), []byte(fmt.Sprintf("r%d", i)))
				}
				if err != nil {
					return nil, err
				}
				res, err := attack.DLG(oracle, obs, sample.X, sample.Label,
					attack.DLGConfig{Iterations: sc.AttackIters, LR: 0.3, Seed: []byte(fmt.Sprintf("img-%d", i))})
				if err != nil {
					return nil, err
				}
				c := grid[scenario.Name+"/"+mode]
				c.total++
				if res.MSE < 5e-2 {
					c.recognizable++
				}
			}
		}
	}

	t := &Table{
		Title:  "Ablation: adaptive adversary with a leaked model mapper (DLG, recognizable = MSE < 5e-2)",
		Header: []string{"Scenario", "Mapper secret", "Mapper leaked"},
	}
	for _, s := range scenarios {
		row := []string{s.Name}
		for _, m := range modes {
			c := grid[s.Name+"/"+m]
			row = append(row, percent(c.recognizable, c.total))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		"partition-only protection depends on mapper secrecy; shuffling holds even when the mapper leaks",
		fmt.Sprintf("%d images, %d iterations, LeNet %dx%dx3", sc.AttackImages, sc.AttackIters, side, side))
	return t, nil
}
