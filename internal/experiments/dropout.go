package experiments

import (
	"fmt"

	"deta/internal/agg"
	"deta/internal/core"
	"deta/internal/dataset"
	"deta/internal/fl"
	"deta/internal/nn"
)

// AblationDropout trains DeTA with a flaky party that misses every other
// round, using quorum-based aggregation (Options.Quorum). It demonstrates
// the paper's §8.2 asynchrony argument: unlike SMC cohort protocols, DeTA
// tolerates stragglers — the federation keeps converging.
func AblationDropout(sc Scale) (*Table, error) {
	side := 12
	spec := dataset.Spec{Name: "dropout", C: 1, H: side, W: side, Classes: 4}
	train, test := dataset.TrainTest(spec, 4*sc.SamplesPerParty, sc.TestSamples, []byte("dropout-data"))
	build := func() *nn.Network { return nn.ConvNet8(1, side, side, 4) }
	cfg := fl.Config{
		Mode: fl.FedAvg, Rounds: 6, LocalEpochs: 1,
		BatchSize: sc.BatchSize, LR: sc.LR, Momentum: sc.Momentum, Seed: []byte("dropout-cfg"),
	}

	run := func(flaky bool) (*fl.History, error) {
		shards := dataset.SplitIID(train, 4, []byte("dropout-split"))
		ps := make([]*fl.Party, 4)
		for i := range ps {
			ps[i] = fl.NewParty(fmt.Sprintf("P%d", i+1), build, shards[i], cfg)
		}
		s := &core.Session{
			Cfg:   cfg,
			Opts:  core.Options{NumAggregators: 3, Shuffle: true, Quorum: 3, MapperSeed: []byte("dropout-mapper")},
			Build: build, Parties: ps, Test: test,
			InitSeed:     []byte("dropout-init"),
			NewAlgorithm: func() agg.Algorithm { return agg.IterativeAverage{} },
		}
		if flaky {
			// P4 participates only in even rounds.
			s.Availability = func(partyID string, round int) bool {
				return partyID != "P4" || round%2 == 0
			}
		}
		return s.Run()
	}

	full, err := run(false)
	if err != nil {
		return nil, err
	}
	flaky, err := run(true)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:  "Ablation: straggler tolerance via quorum aggregation (4 parties, quorum 3, P4 flaky)",
		Header: []string{"Round", "Loss (all present)", "Loss (P4 flaky)", "Acc (all)", "Acc (flaky)"},
	}
	for i := range full.Rounds {
		f, d := full.Rounds[i], flaky.Rounds[i]
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(f.Round),
			fmt.Sprintf("%.4f", f.TestLoss),
			fmt.Sprintf("%.4f", d.TestLoss),
			fmt.Sprintf("%.3f", f.Accuracy),
			fmt.Sprintf("%.3f", d.Accuracy),
		})
	}
	t.Notes = append(t.Notes, "rounds where P4 is absent fuse the remaining three parties; training never stalls")
	return t, nil
}
