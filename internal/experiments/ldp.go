package experiments

import (
	"fmt"

	"deta/internal/agg"
	"deta/internal/core"
	"deta/internal/dataset"
	"deta/internal/fl"
	"deta/internal/nn"
)

// AblationLDP trains DeTA with local differential privacy at several
// privacy budgets and reports the accuracy cost — the §8.1 point that LDP
// composes with DeTA (perturbation happens on-device, before the
// transform) but charges utility for privacy, unlike DeTA's own layers
// which are utility-free.
func AblationLDP(sc Scale) (*Table, error) {
	side := 12
	spec := dataset.Spec{Name: "ldp-ablation", C: 1, H: side, W: side, Classes: 4}
	train, test := dataset.TrainTest(spec, 4*sc.SamplesPerParty, sc.TestSamples, []byte("ldp-abl-data"))
	build := func() *nn.Network { return nn.ConvNet8(1, side, side, 4) }

	run := func(ldp *fl.LDPConfig) (*fl.History, error) {
		cfg := fl.Config{
			Mode: fl.FedAvg, Rounds: 5, LocalEpochs: 1,
			BatchSize: sc.BatchSize, LR: sc.LR, Momentum: sc.Momentum,
			Seed: []byte("ldp-abl-cfg"), LDP: ldp,
		}
		shards := dataset.SplitIID(train, 4, []byte("ldp-abl-split"))
		ps := make([]*fl.Party, 4)
		for i := range ps {
			ps[i] = fl.NewParty(fmt.Sprintf("P%d", i+1), build, shards[i], cfg)
		}
		s := &core.Session{
			Cfg:   cfg,
			Opts:  core.Options{NumAggregators: 3, Shuffle: true, MapperSeed: []byte("ldp-abl-mapper")},
			Build: build, Parties: ps, Test: test,
			InitSeed:     []byte("ldp-abl-init"),
			NewAlgorithm: func() agg.Algorithm { return agg.IterativeAverage{} },
		}
		return s.Run()
	}

	t := &Table{
		Title:  "Ablation: local differential privacy under DeTA (Gaussian mechanism, clip 10, delta 1e-5)",
		Header: []string{"Epsilon", "NoiseSigma", "FinalLoss", "FinalAccuracy"},
	}
	cases := []struct {
		label string
		ldp   *fl.LDPConfig
	}{
		{"off", nil},
		{"1e4", &fl.LDPConfig{Epsilon: 1e4, Delta: 1e-5, ClipNorm: 10, Seed: []byte("ldp-abl")}},
		{"1e3", &fl.LDPConfig{Epsilon: 1e3, Delta: 1e-5, ClipNorm: 10, Seed: []byte("ldp-abl")}},
		{"1e2", &fl.LDPConfig{Epsilon: 1e2, Delta: 1e-5, ClipNorm: 10, Seed: []byte("ldp-abl")}},
	}
	for _, c := range cases {
		hist, err := run(c.ldp)
		if err != nil {
			return nil, err
		}
		sigma := "0"
		if c.ldp != nil {
			sigma = fmt.Sprintf("%.4f", c.ldp.NoiseSigma())
		}
		final := hist.Final()
		t.Rows = append(t.Rows, []string{
			c.label, sigma,
			fmt.Sprintf("%.4f", final.TestLoss),
			fmt.Sprintf("%.4f", final.Accuracy),
		})
	}
	t.Notes = append(t.Notes,
		"epsilons are per-round budgets at toy scale; the monotone accuracy cost is the reproduced shape",
		"perturbation applies to the update delta on-device, then DeTA transforms the noisy update (§8.1)")
	return t, nil
}
