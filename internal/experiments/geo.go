package experiments

import (
	"context"
	"fmt"
	"time"

	"deta/internal/agg"
	"deta/internal/attest"
	"deta/internal/core"
	"deta/internal/rng"
	"deta/internal/sev"
	"deta/internal/tensor"
	"deta/internal/transport"
)

// AblationGeoLatency measures one full DeTA round (Phase II verified
// upload -> fuse -> download) over RPC channels with injected one-way
// write delays, quantifying the cost of geo-distributing aggregators
// (paper §4.1 deploys them at different sites for breach independence).
func AblationGeoLatency(sc Scale) (*Table, error) {
	const parties = 4
	const params = 4096

	t := &Table{
		Title:  "Ablation: geo-distributed aggregators — round latency vs one-way link delay (4 parties, 3 aggregators, 4k params)",
		Header: []string{"LinkDelay", "RoundLatency", "Rounds/s"},
	}
	for _, delay := range []time.Duration{0, time.Millisecond, 5 * time.Millisecond} {
		elapsed, err := runGeoRound(parties, params, delay)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			delay.String(),
			elapsed.String(),
			fmt.Sprintf("%.1f", 1/elapsed.Seconds()),
		})
	}
	t.Notes = append(t.Notes,
		"delays injected per frame write on party<->aggregator channels; training compute excluded",
		"uploads to independent aggregators are parallelizable in deployment; this measures the serial worst case")
	return t, nil
}

// runGeoRound bootstraps three aggregator servers behind latency-injected
// in-memory links and executes one aggregation round, returning its wall
// time.
func runGeoRound(parties, params int, delay time.Duration) (time.Duration, error) {
	vendor, err := sev.NewVendor()
	if err != nil {
		return 0, err
	}
	ap := attest.NewProxy(vendor.RAS(), core.OVMF)

	type aggHandle struct {
		node   *core.AggregatorNode
		client *core.AggregatorClient
		srv    *transport.Server
	}
	handles := make([]*aggHandle, 3)
	for j := range handles {
		platform, err := sev.NewPlatform("geo-host", vendor)
		if err != nil {
			return 0, err
		}
		cvm, err := platform.LaunchCVM(core.OVMF)
		if err != nil {
			return 0, err
		}
		id := fmt.Sprintf("agg-%d", j+1)
		if _, err := ap.Provision(id, platform, cvm); err != nil {
			return 0, err
		}
		node, err := core.NewAggregatorNode(id, agg.IterativeAverage{}, cvm)
		if err != nil {
			return 0, err
		}
		srv := transport.NewServer()
		core.ServeAggregator(node, srv)
		ln := transport.NewMemListener()
		go srv.Serve(transport.WithListenerLatency(ln, delay))
		conn, err := ln.Dial()
		if err != nil {
			return 0, err
		}
		handles[j] = &aggHandle{
			node:   node,
			client: &core.AggregatorClient{ID: id, C: transport.NewClient(transport.WithLatency(conn, delay))},
			srv:    srv,
		}
	}
	defer func() {
		for _, h := range handles {
			h.srv.Close()
		}
	}()

	mapper, err := core.NewMapper(params, core.EqualProportions(3), []byte("geo-mapper"))
	if err != nil {
		return 0, err
	}
	shuffler, err := core.NewShuffler([]byte("geo-permutation-key-0123456789ab"))
	if err != nil {
		return 0, err
	}
	roundID := []byte("geo-round")

	updates := make([]tensor.Vector, parties)
	st := rng.NewStream([]byte("geo-updates"), "v")
	for p := range updates {
		v := make(tensor.Vector, params)
		for i := range v {
			v[i] = st.NormFloat64()
		}
		updates[p] = v
	}
	for p := 0; p < parties; p++ {
		id := fmt.Sprintf("P%d", p+1)
		for _, h := range handles {
			h.node.Register(id)
		}
	}

	start := time.Now()
	for p := 0; p < parties; p++ {
		id := fmt.Sprintf("P%d", p+1)
		frags, err := core.Transform(mapper, shuffler, updates[p], roundID, true)
		if err != nil {
			return 0, err
		}
		for j, h := range handles {
			if err := h.client.Upload(context.Background(), 1, id, frags[j], 1); err != nil {
				return 0, err
			}
		}
	}
	merged := make([]tensor.Vector, 3)
	for j, h := range handles {
		if err := h.client.Aggregate(context.Background(), 1); err != nil {
			return 0, err
		}
		merged[j], err = h.client.Download(context.Background(), 1, "P1")
		if err != nil {
			return 0, err
		}
	}
	if _, err := core.InverseTransform(mapper, shuffler, merged, roundID, true); err != nil {
		return 0, err
	}
	return time.Since(start), nil
}
