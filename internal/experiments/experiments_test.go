package experiments

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
	"testing"
	"time"
)

// parsePercent converts a "12.3%" cell back to a float.
func parsePercent(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("bad percent cell %q: %v", cell, err)
	}
	return v
}

// columnSum returns the sum of a column's percentages across rows.
func columnSum(t *testing.T, tab *Table, col int) float64 {
	t.Helper()
	var s float64
	for _, row := range tab.Rows {
		s += parsePercent(t, row[col])
	}
	return s
}

func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("attack grid is slow")
	}
	sc := FastScale()
	tab, err := Table1(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 || len(tab.Header) != 7 {
		t.Fatalf("table shape %dx%d", len(tab.Rows), len(tab.Header))
	}
	// Columns are distributions: each must sum to 100%.
	for col := 1; col < 7; col++ {
		if s := columnSum(t, tab, col); s < 99 || s > 101 {
			t.Errorf("column %d sums to %v%%", col, s)
		}
	}
	// The paper's headline shape: without DeTA most reconstructions are
	// recognizable; with any DeTA configuration none are.
	fullRecognizable := parsePercent(t, tab.Rows[0][1])
	if fullRecognizable < 50 {
		t.Errorf("baseline DLG recognizable rate %v%%, want majority", fullRecognizable)
	}
	for col := 2; col < 7; col++ {
		if r := parsePercent(t, tab.Rows[0][col]); r != 0 {
			t.Errorf("DeTA column %d has %v%% recognizable reconstructions, want 0", col, r)
		}
	}
	// With shuffling, reconstructions must land in the top buckets
	// (MSE >= 1).
	for col := 4; col < 7; col++ {
		top := parsePercent(t, tab.Rows[2][col]) + parsePercent(t, tab.Rows[3][col])
		if top < 50 {
			t.Errorf("shuffle column %d has only %v%% in MSE>=1 buckets", col, top)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("attack grid is slow")
	}
	sc := FastScale()
	sc.AttackImages = 4
	tab, err := Table2(sc)
	if err != nil {
		t.Fatal(err)
	}
	if parsePercent(t, tab.Rows[0][1]) < 50 {
		t.Errorf("baseline iDLG recognizable rate %v%%", parsePercent(t, tab.Rows[0][1]))
	}
	for col := 2; col < 7; col++ {
		if r := parsePercent(t, tab.Rows[0][col]); r != 0 {
			t.Errorf("DeTA column %d recognizable %v%%, want 0", col, r)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("attack grid is slow")
	}
	sc := FastScale()
	tab, err := Table3(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Full observation: IG optimization makes progress (cosine distance
	// below 0.6 for all images). DeTA+shuffle: stuck in [0.8, 1].
	lowFull := parsePercent(t, tab.Rows[0][1]) + parsePercent(t, tab.Rows[1][1]) +
		parsePercent(t, tab.Rows[2][1]) + parsePercent(t, tab.Rows[3][1])
	if lowFull < 99 {
		t.Errorf("IG baseline distances not low: %v%% below 0.6", lowFull)
	}
	for col := 4; col < 7; col++ {
		if top := parsePercent(t, tab.Rows[5][col]); top < 99 {
			t.Errorf("shuffle column %d: only %v%% in [0.8,1]", col, top)
		}
	}
}

func TestFig3And4Render(t *testing.T) {
	if testing.Short() {
		t.Skip("reconstruction grids are slow")
	}
	sc := FastScale()
	sc.AttackIters = 60
	sc.IGIters = 60
	var buf bytes.Buffer
	if err := Fig3(sc, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 3", "Ground Truth", "DLG Full", "iDLG 0.2+Shuffle"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig3 output missing %q", want)
		}
	}
	buf.Reset()
	if err := Fig4(sc, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Figure 4") || !strings.Contains(buf.String(), "IG Full") {
		t.Error("fig4 output incomplete")
	}
}

func TestFig5aEquivalenceAndOverhead(t *testing.T) {
	sc := FastScale()
	lossAcc, latency, err := Fig5a(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(lossAcc.Series) != 4 || len(latency.Series) != 2 {
		t.Fatalf("series counts %d, %d", len(lossAcc.Series), len(latency.Series))
	}
	// DeTA and FFL losses must be identical at every round ("no utility
	// loss").
	detaLoss, fflLoss := lossAcc.Series[0].Y, lossAcc.Series[1].Y
	for i := range detaLoss {
		if diff := detaLoss[i] - fflLoss[i]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("round %d: DETA loss %v != FFL loss %v", i+1, detaLoss[i], fflLoss[i])
		}
	}
	// Latency is cumulative and DeTA's overhead is bounded (paper: +0.40x;
	// we allow a broad band for machine variance).
	detaLat, fflLat := latency.Series[0].Y, latency.Series[1].Y
	last := len(detaLat) - 1
	if detaLat[last] <= 0 || fflLat[last] <= 0 {
		t.Fatal("missing latency data")
	}
	ratio := detaLat[last] / fflLat[last]
	if ratio < 1.0 || ratio > 4.0 {
		t.Errorf("DETA/FFL latency ratio %v outside plausible band [1,4]", ratio)
	}
}

func TestFig5bMedian(t *testing.T) {
	sc := FastScale()
	lossAcc, _, err := Fig5b(sc)
	if err != nil {
		t.Fatal(err)
	}
	detaLoss, fflLoss := lossAcc.Series[0].Y, lossAcc.Series[1].Y
	for i := range detaLoss {
		if diff := detaLoss[i] - fflLoss[i]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("round %d: median DETA loss %v != FFL loss %v", i+1, detaLoss[i], fflLoss[i])
		}
	}
}

func TestFig5cPaillier(t *testing.T) {
	if testing.Short() {
		t.Skip("Paillier fusion is slow")
	}
	sc := FastScale()
	lossAcc, latency, err := Fig5c(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Fixed-point round trips make losses equal within encoding precision.
	detaLoss, fflLoss := lossAcc.Series[0].Y, lossAcc.Series[1].Y
	for i := range detaLoss {
		if diff := detaLoss[i] - fflLoss[i]; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("round %d: Paillier DETA loss %v != FFL loss %v", i+1, detaLoss[i], fflLoss[i])
		}
	}
	// The crypto dominates: per-round latency should vastly exceed the
	// plain-averaging latency of fig5a at the same scale.
	if latency.Series[1].Y[0] < 0.5 {
		t.Logf("warning: Paillier FFL round took %vs; expected crypto-dominated (>0.5s)", latency.Series[1].Y[0])
	}
}

func TestFig6TwoPartyCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("CIFAR workload is slow")
	}
	sc := FastScale()
	sc.CIFARRounds = 2
	lossAcc, latency, err := Fig6(sc)
	if err != nil {
		t.Fatal(err)
	}
	// 4 series per party count (DETA/FFL x loss/acc) = 8; latency 4.
	if len(lossAcc.Series) != 8 {
		t.Fatalf("%d loss/acc series", len(lossAcc.Series))
	}
	if len(latency.Series) != 4 {
		t.Fatalf("%d latency series", len(latency.Series))
	}
	// 8-party latency must exceed 4-party latency for both systems.
	lat4 := latency.Series[0].Y[len(latency.Series[0].Y)-1]
	lat8 := latency.Series[2].Y[len(latency.Series[2].Y)-1]
	if lat8 <= lat4 {
		t.Errorf("8-party latency %v not above 4-party %v", lat8, lat4)
	}
}

func TestFig7NonIID(t *testing.T) {
	if testing.Short() {
		t.Skip("VGG workload is slow")
	}
	sc := FastScale()
	sc.RVLRounds = 2
	lossAcc, _, err := Fig7(sc)
	if err != nil {
		t.Fatal(err)
	}
	detaLoss, fflLoss := lossAcc.Series[0].Y, lossAcc.Series[1].Y
	for i := range detaLoss {
		if diff := detaLoss[i] - fflLoss[i]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("round %d: DETA loss %v != FFL loss %v", i+1, detaLoss[i], fflLoss[i])
		}
	}
}

func TestAblationShuffleCost(t *testing.T) {
	tab, err := AblationShuffleCost(FastScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
}

func TestAblationAggregatorCount(t *testing.T) {
	if testing.Short() {
		t.Skip("trains 5 sessions")
	}
	sc := FastScale()
	sc.SamplesPerParty = 12
	sc.TestSamples = 12
	tab, err := AblationAggregatorCount(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Accuracy must be identical across K.
	acc := tab.Rows[0][1]
	for _, row := range tab.Rows {
		if row[1] != acc {
			t.Errorf("accuracy differs across K: %v vs %v", row[1], acc)
		}
	}
}

func TestAblationAuthCost(t *testing.T) {
	tab, err := AblationAuthCost(FastScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
}

func TestAblationKnownMapper(t *testing.T) {
	if testing.Short() {
		t.Skip("attack grid is slow")
	}
	sc := FastScale()
	sc.AttackImages = 3
	tab, err := AblationKnownMapper(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0: partition-only. Leaked mapper must restore the attack;
	// secret mapper must not.
	if got := parsePercent(t, tab.Rows[0][1]); got != 0 {
		t.Errorf("mapper-secret partition attack succeeded %v%%", got)
	}
	if got := parsePercent(t, tab.Rows[0][2]); got < 50 {
		t.Errorf("mapper-leaked partition attack only %v%% successful", got)
	}
	// Row 1: +shuffle holds even with the mapper leaked.
	if got := parsePercent(t, tab.Rows[1][2]); got != 0 {
		t.Errorf("shuffle broken by leaked mapper: %v%%", got)
	}
}

func TestAblationDropout(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two sessions")
	}
	sc := FastScale()
	sc.SamplesPerParty = 12
	sc.TestSamples = 12
	tab, err := AblationDropout(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
}

func TestAblationKeySpace(t *testing.T) {
	tab, err := AblationKeySpace(FastScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
}

func TestAblationGeoLatency(t *testing.T) {
	if testing.Short() {
		t.Skip("injects real delays")
	}
	tab, err := AblationGeoLatency(FastScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Rows are ordered by increasing delay; latency must increase too.
	prev := time.Duration(0)
	for _, row := range tab.Rows {
		d, err := time.ParseDuration(row[1])
		if err != nil {
			t.Fatalf("bad latency cell %q: %v", row[1], err)
		}
		if d < prev {
			t.Errorf("latency decreased with more link delay: %v after %v", d, prev)
		}
		prev = d
	}
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry) {
		t.Fatal("IDs() incomplete")
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("IDs not sorted")
		}
	}
	if err := Run("nope", FastScale(), io.Discard); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	// A cheap registered experiment must run end to end through Run.
	var buf bytes.Buffer
	if err := Run("ablation-keyspace", FastScale(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "KeyBits") {
		t.Fatal("rendered output missing expected header")
	}
}

func TestAblationLabelInference(t *testing.T) {
	if testing.Short() {
		t.Skip("computes many gradients")
	}
	sc := FastScale()
	sc.AttackImages = 3
	tab, err := AblationLabelInference(sc)
	if err != nil {
		t.Fatal(err)
	}
	if got := parsePercent(t, tab.Rows[0][1]); got < 90 {
		t.Errorf("full-gradient label inference %v%%, want ~100%%", got)
	}
	for _, row := range tab.Rows[1:] {
		if got := parsePercent(t, row[1]); got > 50 {
			t.Errorf("scenario %s label inference %v%%, want near chance", row[0], got)
		}
	}
}

func TestAblationLDP(t *testing.T) {
	if testing.Short() {
		t.Skip("trains four sessions")
	}
	sc := FastScale()
	sc.SamplesPerParty = 12
	sc.TestSamples = 12
	tab, err := AblationLDP(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	// Noise sigma must increase monotonically down the rows.
	prev := -1.0
	for _, row := range tab.Rows {
		var sigma float64
		if _, err := fmt.Sscanf(row[1], "%f", &sigma); err != nil {
			t.Fatalf("bad sigma cell %q", row[1])
		}
		if sigma < prev {
			t.Errorf("sigma not monotone: %v after %v", sigma, prev)
		}
		prev = sigma
	}
}

func TestCSVRendering(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"A", "B"}, Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# T", "A,B", "1,2", "# n"} {
		if !strings.Contains(out, want) {
			t.Errorf("table CSV missing %q:\n%s", want, out)
		}
	}
	fig := &Figure{Title: "F", XLabel: "Round", X: []float64{1, 2},
		Series: []Series{{Name: "S", Y: []float64{0.5}}}}
	buf.Reset()
	if err := fig.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	for _, want := range []string{"Round,S", "1,0.5", "2,"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure CSV missing %q:\n%s", want, out)
		}
	}
}

func TestRunFormattedCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := RunFormatted("ablation-keyspace", FastScale(), FormatCSV, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "KeyBits,KeySpace") {
		t.Fatalf("CSV output unexpected:\n%s", buf.String())
	}
	// Text fallback path.
	buf.Reset()
	if err := RunFormatted("ablation-keyspace", FastScale(), FormatText, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "== Ablation") {
		t.Fatal("text output unexpected")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "T",
		Header: []string{"A", "B"},
		Rows:   [][]string{{"1", "22"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== T ==", "A", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFigureRender(t *testing.T) {
	f := &Figure{
		Title: "F", XLabel: "Round", X: []float64{1, 2},
		Series: []Series{{Name: "S", Y: []float64{0.5}}},
		Notes:  []string{"n"},
	}
	var buf bytes.Buffer
	f.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== F ==", "Round", "S", "0.5000", "-", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestBucketize(t *testing.T) {
	upper := []float64{1, 10}
	cases := map[float64]int{0.5: 0, 1: 1, 5: 1, 10: 2, 100: 2}
	for v, want := range cases {
		if got := bucketize(v, upper); got != want {
			t.Errorf("bucketize(%v) = %d, want %d", v, got, want)
		}
	}
}

func TestPercent(t *testing.T) {
	if percent(1, 0) != "0%" {
		t.Error("zero total")
	}
	if percent(1, 3) != "33.3%" {
		t.Errorf("got %s", percent(1, 3))
	}
}
