package experiments

import (
	"fmt"
	"math"
	"time"

	"deta/internal/agg"
	"deta/internal/attest"
	"deta/internal/core"
	"deta/internal/dataset"
	"deta/internal/fl"
	"deta/internal/nn"
	"deta/internal/rng"
	"deta/internal/sev"
	"deta/internal/tensor"
)

// Ablations probe DeTA's design choices beyond the paper's headline
// experiments (DESIGN.md §4, `ablation-*` rows).

// AblationShuffleCost measures the party-side transform cost (partition +
// shuffle + inverse) as the model-update size grows — quantifying the
// "inexpensive compared to SMC" claim of §8.2.
func AblationShuffleCost(sc Scale) (*Table, error) {
	t := &Table{
		Title:  "Ablation: party-side transform cost vs update size (3 aggregators)",
		Header: []string{"Params", "Partition+Shuffle", "RevShuffle+Merge", "Total/param"},
	}
	sh, err := core.NewShuffler([]byte("ablation-shuffle-key-0123456789ab"))
	if err != nil {
		return nil, err
	}
	for _, n := range []int{1 << 10, 1 << 13, 1 << 16, 1 << 18} {
		m, err := core.NewMapper(n, core.EqualProportions(3), []byte("ablation"))
		if err != nil {
			return nil, err
		}
		v := make(tensor.Vector, n)
		st := rng.NewStream([]byte("ablation-values"), "v")
		for i := range v {
			v[i] = st.NormFloat64()
		}
		roundID := []byte("ablation-round")

		reps := 5
		start := time.Now()
		var frags []tensor.Vector
		for r := 0; r < reps; r++ {
			frags, err = core.Transform(m, sh, v, roundID, true)
			if err != nil {
				return nil, err
			}
		}
		fwd := time.Since(start) / time.Duration(reps)

		start = time.Now()
		for r := 0; r < reps; r++ {
			if _, err := core.InverseTransform(m, sh, frags, roundID, true); err != nil {
				return nil, err
			}
		}
		inv := time.Since(start) / time.Duration(reps)

		perParam := float64(fwd+inv) / float64(n)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fwd.String(), inv.String(),
			fmt.Sprintf("%.1fns", perParam),
		})
	}
	return t, nil
}

// AblationAggregatorCount sweeps the decentralization factor K and reports
// training latency and final accuracy, showing that accuracy is invariant
// and overhead grows mildly with K.
func AblationAggregatorCount(sc Scale) (*Table, error) {
	side := 12
	spec := dataset.Spec{Name: "ablation-aggs", C: 1, H: side, W: side, Classes: 4}
	train, test := dataset.TrainTest(spec, 4*sc.SamplesPerParty, sc.TestSamples, []byte("ablation-aggs-data"))
	build := func() *nn.Network { return nn.ConvNet8(1, side, side, 4) }
	cfg := fl.Config{
		Mode: fl.FedAvg, Rounds: 3, LocalEpochs: 1,
		BatchSize: sc.BatchSize, LR: sc.LR, Momentum: sc.Momentum, Seed: []byte("ablation-aggs-cfg"),
	}
	t := &Table{
		Title:  "Ablation: decentralization factor K (MNIST-like, 4 parties)",
		Header: []string{"K", "FinalAccuracy", "TrainLatency", "SetupLatency"},
	}
	for _, k := range []int{1, 2, 3, 4, 6} {
		shards := dataset.SplitIID(train, 4, []byte("ablation-split"))
		ps := make([]*fl.Party, 4)
		for i := range ps {
			ps[i] = fl.NewParty(fmt.Sprintf("P%d", i+1), build, shards[i], cfg)
		}
		s := &core.Session{
			Cfg:   cfg,
			Opts:  core.Options{NumAggregators: k, Shuffle: true, MapperSeed: []byte("ablation-mapper")},
			Build: build, Parties: ps, Test: test,
			InitSeed:     []byte("ablation-init"),
			NewAlgorithm: func() agg.Algorithm { return agg.IterativeAverage{} },
		}
		hist, err := s.Run()
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(k),
			fmt.Sprintf("%.4f", hist.Final().Accuracy),
			hist.Final().Cumulative.String(),
			s.SetupLatency.String(),
		})
	}
	t.Notes = append(t.Notes, "accuracy must be identical across K (coordinate-wise aggregation is partition-invariant)")
	return t, nil
}

// AblationAuthCost measures the two-phase authentication protocol's costs:
// Phase I provisioning per aggregator and Phase II challenge-response per
// (party, aggregator) pair.
func AblationAuthCost(sc Scale) (*Table, error) {
	vendor, err := sev.NewVendor()
	if err != nil {
		return nil, err
	}
	platform, err := sev.NewPlatform("ablation-host", vendor)
	if err != nil {
		return nil, err
	}
	ap := attest.NewProxy(vendor.RAS(), core.OVMF)

	const reps = 20
	start := time.Now()
	var lastID string
	for i := 0; i < reps; i++ {
		cvm, err := platform.LaunchCVM(core.OVMF)
		if err != nil {
			return nil, err
		}
		lastID = fmt.Sprintf("agg-%d", i)
		if _, err := ap.Provision(lastID, platform, cvm); err != nil {
			return nil, err
		}
	}
	phase1 := time.Since(start) / reps

	// Phase II timing against the last provisioned aggregator.
	cvm, err := platform.LaunchCVM(core.OVMF)
	if err != nil {
		return nil, err
	}
	if _, err := ap.Provision("agg-ph2", platform, cvm); err != nil {
		return nil, err
	}
	node, err := core.NewAggregatorNode("agg-ph2", agg.IterativeAverage{}, cvm)
	if err != nil {
		return nil, err
	}
	pub, err := ap.TokenPubKey("agg-ph2")
	if err != nil {
		return nil, err
	}
	start = time.Now()
	for i := 0; i < reps; i++ {
		nonce, err := attest.NewNonce()
		if err != nil {
			return nil, err
		}
		sig, err := node.SignChallenge(nonce)
		if err != nil {
			return nil, err
		}
		if err := attest.VerifyChallenge(pub, nonce, sig); err != nil {
			return nil, err
		}
	}
	phase2 := time.Since(start) / reps

	t := &Table{
		Title:  "Ablation: two-phase authentication cost",
		Header: []string{"Stage", "Cost"},
		Rows: [][]string{
			{"Phase I (attest+provision, per aggregator)", phase1.String()},
			{"Phase II (challenge-response, per party x aggregator)", phase2.String()},
		},
		Notes: []string{"one-time costs at training bootstrap; amortized over all rounds"},
	}
	return t, nil
}

// AblationKeySpace tabulates the brute-force cost model of §4.2: an
// order-recovery attack must search the permutation key space, so the cost
// is O(2^|key| * T) regardless of parameter values.
func AblationKeySpace(sc Scale) (*Table, error) {
	t := &Table{
		Title:  "Ablation: order-recovery attack cost O(2^|key| * T)",
		Header: []string{"KeyBits", "KeySpace", "Years@1e12 attempts/s"},
	}
	for _, bits := range []int{64, 128, 192, 256} {
		space := math.Pow(2, float64(bits))
		years := space / 1e12 / (365.25 * 24 * 3600)
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(bits),
			fmt.Sprintf("%.3g", space),
			fmt.Sprintf("%.3g", years),
		})
	}
	t.Notes = append(t.Notes,
		"the permutation changes every round; a recovered round key reveals one round only",
		"parameter-value statistics are irrelevant to this cost (§4.2)")
	return t, nil
}
