package experiments

import (
	"fmt"

	"deta/internal/attack"
	"deta/internal/dataset"
	"deta/internal/nn"
)

// mseBuckets are the fidelity thresholds of Tables 1 and 2 (MSE against
// the ground-truth image; below 1e-3 is "recognizable").
var mseBuckets = []float64{1e-3, 1, 1e3}

var mseBucketLabels = []string{"[0,1e-3)", "[1e-3,1)", "[1,1e3)", ">=1e3"}

// cosineBuckets are Table 3's cosine-distance ranges.
var cosineBuckets = []float64{0.01, 0.2, 0.4, 0.6, 0.8}

var cosineBucketLabels = []string{"[0,0.01)", "[0.01,0.2)", "[0.2,0.4)", "[0.4,0.6)", "[0.6,0.8)", "[0.8,1]"}

// attackKind selects the reconstruction attack for the table runners.
type attackKind int

const (
	kindDLG attackKind = iota
	kindIDLG
)

// runDLGTable produces Table 1 (DLG) or Table 2 (iDLG): per scenario, the
// fraction of reconstructions in each MSE bucket, over sc.AttackImages
// randomly-initialized-LeNet reconstructions of CIFAR-100-like inputs.
func runDLGTable(kind attackKind, sc Scale) (*Table, error) {
	side := sc.AttackSide
	spec := dataset.Spec{Name: "cifar100-syn-small", C: 3, H: side, W: side, Classes: dataset.CIFAR100.Classes}
	data := dataset.Make(spec, sc.AttackImages, []byte("attack-table-data"))

	// Randomly initialized LeNet, as in the DLG/iDLG evaluations.
	net := nn.LeNetDLG(3, side, side, spec.Classes)
	net.Init([]byte("attack-table-model"))
	oracle := attack.NewOracle(net)

	counts := make(map[string][]int, len(attack.TableScenarios))
	for _, scenario := range attack.TableScenarios {
		counts[scenario.Name] = make([]int, len(mseBuckets)+1)
	}

	for i := 0; i < data.Len(); i++ {
		sample := data.At(i)
		grad, err := oracle.VictimGradient(sample.X, sample.Label)
		if err != nil {
			return nil, err
		}
		for _, scenario := range attack.TableScenarios {
			obs, err := attack.Observe(grad, scenario, []byte("attack-mapper"), []byte(fmt.Sprintf("round-%d", i)))
			if err != nil {
				return nil, err
			}
			cfg := attack.DLGConfig{Iterations: sc.AttackIters, LR: 0.3, Seed: []byte(fmt.Sprintf("img-%d", i))}
			var res *attack.Result
			if kind == kindDLG {
				res, err = attack.DLG(oracle, obs, sample.X, sample.Label, cfg)
			} else {
				res, err = attack.IDLG(oracle, obs, sample.X, sample.Label, cfg)
			}
			if err != nil {
				return nil, err
			}
			counts[scenario.Name][bucketize(res.MSE, mseBuckets)]++
		}
	}

	name := "DLG"
	title := "Table 1: Fidelity Threshold (MSE) for DLG with Model Partitioning and Parameter Shuffling"
	if kind == kindIDLG {
		name = "iDLG"
		title = "Table 2: Fidelity Threshold (MSE) for iDLG with Model Partitioning and Parameter Shuffling"
	}
	t := &Table{
		Title:  title,
		Header: []string{name + " MSE", "Full*", "0.6", "0.2", "Full+Sh", "0.6+Sh", "0.2+Sh"},
	}
	for b, label := range mseBucketLabels {
		row := []string{label}
		for _, scenario := range attack.TableScenarios {
			row = append(row, percent(counts[scenario.Name][b], sc.AttackImages))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d images, %d iterations, LeNet on %dx%dx3 synthetic CIFAR-100 (reduced scale; paper: 1000 images, 32x32)",
			sc.AttackImages, sc.AttackIters, side, side),
		"Full* = attack sees the entire in-order model update (no DeTA); paper baseline column")
	return t, nil
}

// Table1 reproduces the DLG grid.
func Table1(sc Scale) (*Table, error) { return runDLGTable(kindDLG, sc) }

// Table2 reproduces the iDLG grid.
func Table2(sc Scale) (*Table, error) { return runDLGTable(kindIDLG, sc) }

// Table3 reproduces the IG grid: final cosine distance buckets for the
// Inverting Gradients attack against a randomly initialized ResNet-18-lite
// on ImageNet-like inputs.
func Table3(sc Scale) (*Table, error) {
	side := sc.IGSide
	spec := dataset.Spec{Name: "imagenet-syn-small", C: 3, H: side, W: side, Classes: dataset.TinyImageNet.Classes}
	data := dataset.Make(spec, sc.IGImages, []byte("ig-table-data"))

	net := nn.ResNet18Lite(3, side, side, spec.Classes, [4]int{4, 8, 16, 32})
	net.Init([]byte("ig-table-model"))
	oracle := attack.NewOracle(net)

	counts := make(map[string][]int, len(attack.TableScenarios))
	for _, scenario := range attack.TableScenarios {
		counts[scenario.Name] = make([]int, len(cosineBuckets)+1)
	}
	for i := 0; i < data.Len(); i++ {
		sample := data.At(i)
		grad, err := oracle.VictimGradient(sample.X, sample.Label)
		if err != nil {
			return nil, err
		}
		for _, scenario := range attack.TableScenarios {
			obs, err := attack.Observe(grad, scenario, []byte("ig-mapper"), []byte(fmt.Sprintf("round-%d", i)))
			if err != nil {
				return nil, err
			}
			res, err := attack.IG(oracle, obs, sample.X, sample.Label, attack.IGConfig{
				Iterations: sc.IGIters,
				Restarts:   sc.IGRestarts,
				LR:         0.05,
				TVWeight:   1e-3,
				Channels:   3, Height: side, Width: side,
				Seed: []byte(fmt.Sprintf("ig-img-%d", i)),
			})
			if err != nil {
				return nil, err
			}
			d := res.CosineDist
			if d > 1 {
				d = 1
			}
			counts[scenario.Name][bucketize(d, cosineBuckets)]++
		}
	}
	t := &Table{
		Title:  "Table 3: Final Cosine Distance for IG with Model Partitioning and Parameter Shuffling",
		Header: []string{"IG Cosine Distance", "Full*", "0.6", "0.2", "Full+Sh", "0.6+Sh", "0.2+Sh"},
	}
	for b, label := range cosineBucketLabels {
		row := []string{label}
		for _, scenario := range attack.TableScenarios {
			row = append(row, percent(counts[scenario.Name][b], sc.IGImages))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d images, %d iterations x %d restarts, ResNet-18-lite on %dx%dx3 synthetic ImageNet (reduced scale; paper: 50 images, 24000 iterations, 224x224)",
			sc.IGImages, sc.IGIters, sc.IGRestarts, side, side))
	return t, nil
}

// ReconstructionMSEStats summarizes MSE values per scenario for ad-hoc
// analysis (cmd/deta-attack).
func ReconstructionMSEStats(results map[string][]float64) *Table {
	t := &Table{
		Title:  "Reconstruction MSE by scenario",
		Header: []string{"Scenario", "Min", "Mean", "Max"},
	}
	for _, scenario := range attack.TableScenarios {
		vals := results[scenario.Name]
		if len(vals) == 0 {
			continue
		}
		mn, mx := vals[0], vals[0]
		var sum float64
		for _, v := range vals {
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
			sum += v
		}
		t.Rows = append(t.Rows, []string{
			scenario.Name,
			fmt.Sprintf("%.3g", mn),
			fmt.Sprintf("%.3g", sum/float64(len(vals))),
			fmt.Sprintf("%.3g", mx),
		})
	}
	return t
}
