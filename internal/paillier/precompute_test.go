package paillier

import (
	"math/big"
	"testing"
)

// precompute_test.go proves the fast paths introduced by Precompute — CRT
// decryption and fixed-base windowed encryption — are drop-in equivalent
// to the legacy single-modulus/full-exponentiation paths: same plaintexts,
// same homomorphic behavior, and a key without Precompute keeps working.

// legacyKey strips the precomputed state from sk, forcing the original
// Lambda/Mu decryption and full-exponentiation encryption paths.
func legacyKey(sk *PrivateKey) *PrivateKey {
	cp := *sk
	cp.crt = nil
	cp.fb = nil
	return &cp
}

func TestCRTDecryptMatchesLegacy(t *testing.T) {
	sk, err := GenerateKey(testBits)
	if err != nil {
		t.Fatal(err)
	}
	if sk.crt == nil {
		t.Fatal("GenerateKey did not precompute CRT constants")
	}
	slow := legacyKey(sk)
	for _, m := range []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(424242),
		new(big.Int).Sub(sk.N, big.NewInt(1)), // N-1: the edge of the range
		new(big.Int).Rsh(sk.N, 1),             // mid-range
	} {
		ct, err := sk.Encrypt(m)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := sk.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := slow.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if fast.Cmp(legacy) != 0 {
			t.Fatalf("m=%v: CRT decrypt %v, legacy decrypt %v", m, fast, legacy)
		}
		if fast.Cmp(m) != 0 {
			t.Fatalf("m=%v: decrypted to %v", m, fast)
		}
	}
}

// TestFixedBaseEncryptInteroperates: ciphertexts from the fixed-base
// encoder must decrypt on both decryption paths and compose homomorphically
// with legacy-encrypted ciphertexts — the two optimizations are
// independent and wire-compatible.
func TestFixedBaseEncryptInteroperates(t *testing.T) {
	sk, err := GenerateKey(testBits)
	if err != nil {
		t.Fatal(err)
	}
	if sk.fb == nil {
		t.Fatal("GenerateKey did not precompute the fixed-base table")
	}
	slow := legacyKey(sk)

	a, b := big.NewInt(1234), big.NewInt(8765)
	ctFast, err := sk.Encrypt(a) // fixed-base blinding
	if err != nil {
		t.Fatal(err)
	}
	ctSlow, err := slow.Encrypt(b) // full-exponentiation blinding
	if err != nil {
		t.Fatal(err)
	}
	sum := sk.Add(ctFast, ctSlow)
	for name, dec := range map[string]*PrivateKey{"crt": sk, "legacy": slow} {
		got, err := dec.Decrypt(sum)
		if err != nil {
			t.Fatal(err)
		}
		if want := new(big.Int).Add(a, b); got.Cmp(want) != 0 {
			t.Fatalf("%s decrypt of mixed-path sum: got %v want %v", name, got, want)
		}
	}
}

// TestFixedBaseEncryptionStaysRandomized: the fixed-base blinding must
// still draw a fresh random exponent per encryption — two encryptions of
// one plaintext may never share a ciphertext.
func TestFixedBaseEncryptionStaysRandomized(t *testing.T) {
	sk, err := GenerateKey(testBits)
	if err != nil {
		t.Fatal(err)
	}
	m := big.NewInt(7)
	c1, err := sk.Encrypt(m)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := sk.Encrypt(m)
	if err != nil {
		t.Fatal(err)
	}
	if c1.C.Cmp(c2.C) == 0 {
		t.Fatal("fixed-base encryption produced identical ciphertexts")
	}
}

// TestPrecomputeRebuild: a key reconstructed from its stored fields (as a
// daemon loading persisted key material would) regains both fast paths
// from an explicit Precompute call, and works without one.
func TestPrecomputeRebuild(t *testing.T) {
	sk, err := GenerateKey(testBits)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := &PrivateKey{
		PublicKey: PublicKey{N: sk.N, N2: sk.N2, G: sk.G},
		Lambda:    sk.Lambda,
		Mu:        sk.Mu,
		P:         sk.P,
		Q:         sk.Q,
	}
	m := big.NewInt(31337)
	// Before Precompute: legacy paths only, still correct.
	ct, err := rebuilt.Encrypt(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rebuilt.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(m) != 0 {
		t.Fatalf("un-precomputed key round trip: got %v want %v", got, m)
	}
	if err := rebuilt.Precompute(); err != nil {
		t.Fatal(err)
	}
	if rebuilt.crt == nil || rebuilt.fb == nil {
		t.Fatal("Precompute left fast-path state unset")
	}
	got, err = rebuilt.Decrypt(ct) // CRT path on a legacy-blinded ciphertext
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(m) != 0 {
		t.Fatalf("precomputed key decrypt: got %v want %v", got, m)
	}
}

// TestPrecomputeWithoutFactors: a public-key-only or P/Q-less private key
// still precomputes the encryption table; decryption keeps the legacy
// path.
func TestPrecomputeWithoutFactors(t *testing.T) {
	sk, err := GenerateKey(testBits)
	if err != nil {
		t.Fatal(err)
	}
	partial := &PrivateKey{
		PublicKey: PublicKey{N: sk.N, N2: sk.N2, G: sk.G},
		Lambda:    sk.Lambda,
		Mu:        sk.Mu,
	}
	if err := partial.Precompute(); err != nil {
		t.Fatal(err)
	}
	if partial.crt != nil {
		t.Fatal("CRT constants derived without P and Q")
	}
	if partial.fb == nil {
		t.Fatal("fixed-base table not built")
	}
	m := big.NewInt(99)
	ct, err := partial.Encrypt(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := partial.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(m) != 0 {
		t.Fatalf("partial key round trip: got %v want %v", got, m)
	}
}
