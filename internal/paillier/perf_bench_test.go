package paillier_test

import (
	"testing"

	"deta/internal/perf"
)

// BenchmarkPerfSuite runs the paillier area of the tracked perf suite
// (internal/perf) under `go test -bench`, emitting the same stable bench
// names the BENCH_paillier.json baseline records.
func BenchmarkPerfSuite(b *testing.B) { perf.RunAreaBenchmarks(b, "paillier") }
