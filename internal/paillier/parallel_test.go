package paillier

import (
	"math"
	"testing"

	"deta/internal/parallel"
)

// The vector kernels are embarrassingly parallel big-int loops. Encryption
// is randomized, so "equivalence" is semantic (decrypt round-trips to the
// same plaintexts); decryption and homomorphic addition are deterministic,
// so those must be value-identical across worker counts.
func TestVectorKernelsAcrossWorkerCounts(t *testing.T) {
	sk := key(t)
	xs := []float64{0, 1.25, -2.5, 3.75, -0.125, 100.5, -99.875, 0.0625, 7, -13}
	ys := []float64{1, -1.25, 2.5, -3.75, 0.125, -100.5, 99.875, -0.0625, 0.5, 13}

	// Ciphertexts encrypted once (serially), then decrypted and summed under
	// every worker count; results must match the serial ground truth exactly.
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)
	cx, err := sk.EncryptVector(xs)
	if err != nil {
		t.Fatal(err)
	}
	cy, err := sk.EncryptVector(ys)
	if err != nil {
		t.Fatal(err)
	}
	serialSum, err := sk.AddVectors(cx, cy)
	if err != nil {
		t.Fatal(err)
	}
	serialDec, err := sk.DecryptVector(serialSum)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 3, 8} {
		parallel.SetWorkers(workers)
		sum, err := sk.AddVectors(cx, cy)
		if err != nil {
			t.Fatal(err)
		}
		for i := range sum {
			if sum[i].C.Cmp(serialSum[i].C) != 0 {
				t.Fatalf("workers=%d: AddVectors element %d differs from serial", workers, i)
			}
		}
		dec, err := sk.DecryptVector(sum)
		if err != nil {
			t.Fatal(err)
		}
		for i := range dec {
			if dec[i] != serialDec[i] {
				t.Fatalf("workers=%d: DecryptVector element %d: %v != %v", workers, i, dec[i], serialDec[i])
			}
			if math.Abs(dec[i]-(xs[i]+ys[i])) > 1e-9 {
				t.Fatalf("workers=%d: element %d decodes to %v, want %v", workers, i, dec[i], xs[i]+ys[i])
			}
		}
		// Parallel encryption round-trips (fresh randomness per element, so
		// only the plaintexts are comparable).
		cts, err := sk.EncryptVector(xs)
		if err != nil {
			t.Fatal(err)
		}
		back, err := sk.DecryptVector(cts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range back {
			if math.Abs(back[i]-xs[i]) > 1e-9 {
				t.Fatalf("workers=%d: encrypt/decrypt round-trip %v -> %v", workers, xs[i], back[i])
			}
		}
	}
}

// Errors surface deterministically from parallel loops: the lowest-indexed
// failing element wins regardless of scheduling.
func TestEncryptVectorParallelError(t *testing.T) {
	sk := key(t)
	prev := parallel.SetWorkers(4)
	defer parallel.SetWorkers(prev)
	xs := []float64{1, 2, math.NaN(), 4, math.Inf(1), 6}
	_, err := sk.EncryptVector(xs)
	if err == nil {
		t.Fatal("NaN accepted")
	}
	want := "paillier: element 2"
	if got := err.Error(); len(got) < len(want) || got[:len(want)] != want {
		t.Fatalf("err = %q, want prefix %q (lowest failing element)", got, want)
	}
}

func TestDecryptVectorParallelError(t *testing.T) {
	sk := key(t)
	prev := parallel.SetWorkers(4)
	defer parallel.SetWorkers(prev)
	cts, err := sk.EncryptVector([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	cts[1] = nil
	cts[3] = &Ciphertext{}
	if _, err := sk.DecryptVector(cts); err == nil {
		t.Fatal("nil ciphertext accepted")
	} else if want := "paillier: element 1"; err.Error()[:len(want)] != want {
		t.Fatalf("err = %q, want prefix %q", err.Error(), want)
	}
}
