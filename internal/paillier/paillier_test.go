package paillier

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

// Small keys keep tests fast; security is not under test.
const testBits = 256

var testKey *PrivateKey

func key(t testing.TB) *PrivateKey {
	if testKey == nil {
		k, err := GenerateKey(testBits)
		if err != nil {
			t.Fatal(err)
		}
		testKey = k
	}
	return testKey
}

func TestGenerateKeyTooSmall(t *testing.T) {
	if _, err := GenerateKey(64); err == nil {
		t.Fatal("want error for tiny key")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	sk := key(t)
	for _, m := range []int64{0, 1, 2, 12345, 987654321} {
		ct, err := sk.Encrypt(big.NewInt(m))
		if err != nil {
			t.Fatal(err)
		}
		got, err := sk.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if got.Int64() != m {
			t.Fatalf("round trip %d -> %d", m, got.Int64())
		}
	}
}

func TestEncryptRejectsOutOfRange(t *testing.T) {
	sk := key(t)
	if _, err := sk.Encrypt(big.NewInt(-1)); err == nil {
		t.Fatal("negative plaintext accepted")
	}
	if _, err := sk.Encrypt(new(big.Int).Set(sk.N)); err == nil {
		t.Fatal("plaintext == N accepted")
	}
}

func TestDecryptNil(t *testing.T) {
	sk := key(t)
	if _, err := sk.Decrypt(nil); err == nil {
		t.Fatal("nil ciphertext accepted")
	}
}

func TestEncryptionIsRandomized(t *testing.T) {
	sk := key(t)
	a, _ := sk.Encrypt(big.NewInt(42))
	b, _ := sk.Encrypt(big.NewInt(42))
	if a.C.Cmp(b.C) == 0 {
		t.Fatal("two encryptions of the same plaintext are identical")
	}
}

func TestHomomorphicAdd(t *testing.T) {
	sk := key(t)
	a, _ := sk.Encrypt(big.NewInt(111))
	b, _ := sk.Encrypt(big.NewInt(222))
	sum, err := sk.Decrypt(sk.Add(a, b))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Int64() != 333 {
		t.Fatalf("Dec(Enc(111)+Enc(222)) = %v", sum)
	}
}

func TestHomomorphicScalarMul(t *testing.T) {
	sk := key(t)
	a, _ := sk.Encrypt(big.NewInt(7))
	ct, err := sk.MulConst(a, big.NewInt(6))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int64() != 42 {
		t.Fatalf("Dec(6*Enc(7)) = %v", got)
	}
}

// Regression: a negative scalar used to be passed straight to big.Int.Exp,
// which silently computes a modular inverse instead of k*a. It must error.
func TestMulConstRejectsNegativeScalar(t *testing.T) {
	sk := key(t)
	a, _ := sk.Encrypt(big.NewInt(7))
	if _, err := sk.MulConst(a, big.NewInt(-2)); err == nil {
		t.Fatal("negative scalar accepted")
	}
	if _, err := sk.MulConst(nil, big.NewInt(2)); err == nil {
		t.Fatal("nil ciphertext accepted")
	}
	// Zero stays valid: Dec(0*Enc(7)) == 0.
	ct, err := sk.MulConst(a, big.NewInt(0))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.Decrypt(ct)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sign() != 0 {
		t.Fatalf("Dec(0*Enc(7)) = %v, want 0", got)
	}
}

// Property: homomorphic addition matches plaintext addition for arbitrary
// uint32 pairs.
func TestHomomorphismQuick(t *testing.T) {
	sk := key(t)
	f := func(x, y uint32) bool {
		a, err1 := sk.Encrypt(big.NewInt(int64(x)))
		b, err2 := sk.Encrypt(big.NewInt(int64(y)))
		if err1 != nil || err2 != nil {
			return false
		}
		got, err := sk.Decrypt(sk.Add(a, b))
		return err == nil && got.Int64() == int64(x)+int64(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestFloatEncodeDecode(t *testing.T) {
	sk := key(t)
	for _, x := range []float64{0, 1.5, -1.5, 0.001, -123.456, 1e6} {
		m, err := sk.EncodeFloat(x, FracBits)
		if err != nil {
			t.Fatal(err)
		}
		got := sk.DecodeFloat(m, FracBits)
		if math.Abs(got-x) > 1e-9 {
			t.Fatalf("encode/decode %v -> %v", x, got)
		}
	}
	if _, err := sk.EncodeFloat(math.NaN(), FracBits); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := sk.EncodeFloat(math.Inf(1), FracBits); err == nil {
		t.Fatal("Inf accepted")
	}
}

func TestVectorSumMatchesPlaintext(t *testing.T) {
	sk := key(t)
	a := []float64{0.5, -1.25, 3.75}
	b := []float64{1.5, 2.25, -0.75}
	c := []float64{-2.0, 0.5, 1.0}
	ca, err := sk.EncryptVector(a)
	if err != nil {
		t.Fatal(err)
	}
	cb, _ := sk.EncryptVector(b)
	cc, _ := sk.EncryptVector(c)
	sum, err := sk.AddVectors(ca, cb, cc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sk.DecryptVector(sum)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		want := a[i] + b[i] + c[i]
		if math.Abs(got[i]-want) > 1e-9 {
			t.Fatalf("element %d: %v, want %v", i, got[i], want)
		}
	}
}

func TestAddVectorsErrors(t *testing.T) {
	sk := key(t)
	if _, err := sk.AddVectors(); err == nil {
		t.Fatal("empty input accepted")
	}
	a, _ := sk.EncryptVector([]float64{1})
	b, _ := sk.EncryptVector([]float64{1, 2})
	if _, err := sk.AddVectors(a, b); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
}

func BenchmarkEncrypt(b *testing.B) {
	sk := key(b)
	m := big.NewInt(123456)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Encrypt(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt(b *testing.B) {
	sk := key(b)
	ct, _ := sk.Encrypt(big.NewInt(123456))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sk.Decrypt(ct); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHomomorphicAdd(b *testing.B) {
	sk := key(b)
	x, _ := sk.Encrypt(big.NewInt(1))
	y, _ := sk.Encrypt(big.NewInt(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Add(x, y)
	}
}
