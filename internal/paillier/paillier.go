// Package paillier implements the Paillier additively homomorphic
// cryptosystem on math/big, plus fixed-point encoding so model-update
// vectors of float64s can be encrypted, summed under encryption by an
// aggregator, and decrypted/averaged by the parties. This backs the
// Paillier-based fusion aggregation algorithm the paper evaluates in
// Figures 5c and 5f.
//
// The scheme: n = p*q for safe-size primes p, q; g = n+1;
// Enc(m) = g^m * r^n mod n^2; Dec(c) = L(c^lambda mod n^2) * mu mod n where
// L(x) = (x-1)/n. Ciphertext products are plaintext sums, and ciphertext
// exponentiation is plaintext scalar multiplication.
package paillier

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math"
	"math/big"
	"math/bits"

	"deta/internal/parallel"
)

var one = big.NewInt(1)

// PublicKey encrypts and operates on ciphertexts.
type PublicKey struct {
	N  *big.Int // modulus
	N2 *big.Int // N^2, cached
	G  *big.Int // generator, N+1

	// fb, when non-nil, is the fixed-base windowed-exponentiation table
	// for the r^N blinding factor — the dominant cost of encryption. Set
	// by Precompute (GenerateKey does so automatically); read-only
	// afterwards, so concurrent EncryptVector workers share it safely.
	fb *fixedBase
}

// PrivateKey decrypts. It embeds the public key.
type PrivateKey struct {
	PublicKey
	Lambda *big.Int // lcm(p-1, q-1)
	Mu     *big.Int // (L(g^lambda mod n^2))^-1 mod n

	// P, Q are the prime factors of N, retained so Precompute can derive
	// the CRT decryption constants. Keys that predate their introduction
	// (or were rebuilt from just N/Lambda/Mu) leave them nil and decrypt
	// via the legacy single-modulus path.
	P, Q *big.Int

	// crt, when non-nil, holds the precomputed CRT decryption constants;
	// read-only after Precompute, shared safely by DecryptVector workers.
	crt *crtPrecomp
}

// crtPrecomp caches the constants for CRT decryption: working mod p² and
// q² instead of n² roughly quarters the exponentiation cost, and the two
// half-size exponentiations use exponents p-1 and q-1 rather than lambda.
type crtPrecomp struct {
	p2, q2   *big.Int // p², q²
	pm1, qm1 *big.Int // p-1, q-1
	hp, hq   *big.Int // L_p(g^(p-1) mod p²)^-1 mod p, and the q twin
	pinv     *big.Int // p^-1 mod q, for the Garner recombination
}

// Ciphertext is an element of Z*_{n^2}.
type Ciphertext struct {
	C *big.Int
}

// GenerateKey creates a Paillier key pair with an n of the given bit size.
// Bit sizes of 512-2048 are typical; tests use small keys for speed.
func GenerateKey(bits int) (*PrivateKey, error) {
	if bits < 128 {
		return nil, fmt.Errorf("paillier: key size %d too small (min 128)", bits)
	}
	for {
		p, err := rand.Prime(rand.Reader, bits/2)
		if err != nil {
			return nil, err
		}
		q, err := rand.Prime(rand.Reader, bits/2)
		if err != nil {
			return nil, err
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
		lambda := new(big.Int).Mul(pm1, qm1)
		lambda.Div(lambda, gcd)

		n2 := new(big.Int).Mul(n, n)
		g := new(big.Int).Add(n, one)
		// mu = (L(g^lambda mod n^2))^-1 mod n
		gl := new(big.Int).Exp(g, lambda, n2)
		l := lFunc(gl, n)
		mu := new(big.Int).ModInverse(l, n)
		if mu == nil {
			continue // degenerate; retry
		}
		sk := &PrivateKey{
			PublicKey: PublicKey{N: n, N2: n2, G: g},
			Lambda:    lambda,
			Mu:        mu,
			P:         p,
			Q:         q,
		}
		if err := sk.Precompute(); err != nil {
			continue // degenerate; retry
		}
		return sk, nil
	}
}

// Precompute derives the fast-path tables: the CRT decryption constants
// (requires P and Q) and the public key's fixed-base encryption table.
// GenerateKey calls it automatically; call it manually after rebuilding a
// key from stored fields. Precomputed state is read-only afterwards, so
// the key stays safe for concurrent use.
func (sk *PrivateKey) Precompute() error {
	if sk.P != nil && sk.Q != nil {
		p, q := sk.P, sk.Q
		crt := &crtPrecomp{
			p2:  new(big.Int).Mul(p, p),
			q2:  new(big.Int).Mul(q, q),
			pm1: new(big.Int).Sub(p, one),
			qm1: new(big.Int).Sub(q, one),
		}
		// hp = L_p(g^(p-1) mod p²)^-1 mod p, with L_p(x) = (x-1)/p.
		crt.hp = new(big.Int).ModInverse(lFunc(new(big.Int).Exp(sk.G, crt.pm1, crt.p2), p), p)
		crt.hq = new(big.Int).ModInverse(lFunc(new(big.Int).Exp(sk.G, crt.qm1, crt.q2), q), q)
		crt.pinv = new(big.Int).ModInverse(p, q)
		if crt.hp == nil || crt.hq == nil || crt.pinv == nil {
			return errors.New("paillier: degenerate key, CRT constants not invertible")
		}
		sk.crt = crt
	}
	return sk.PublicKey.Precompute()
}

// Precompute builds the fixed-base windowed-exponentiation table that
// accelerates encryption. One random unit r0 is fixed and h = r0^N mod N²
// tabulated in 4-bit windows; each encryption then blinds with h^a for a
// fresh random a, replacing a full N-bit modular exponentiation with at
// most one table multiplication per window (~N/4 multiplications, no
// squarings). h^a = (r0^a)^N is itself a valid N-th-residue blinding, so
// decryption is unchanged; the ciphertext randomness ranges over the
// subgroup generated by r0 rather than all units — the standard
// fixed-base trade-off of optimized Paillier implementations (cf. the
// Damgård–Jurik–Nielsen generalization), acceptable under the decisional
// composite residuosity assumption this scheme already rests on.
//
// Table size is 16 bignums of |N²| bits per 4-bit window: ~256 KiB for a
// 512-bit N, ~4 MiB for 2048-bit — a per-key, one-time cost.
func (pk *PublicKey) Precompute() error {
	r0, err := randUnit(pk.N)
	if err != nil {
		return err
	}
	h := new(big.Int).Exp(r0, pk.N, pk.N2)
	windows := (pk.N.BitLen() + 3) / 4
	fb := &fixedBase{table: make([][]*big.Int, windows)}
	base := h
	tmp := new(big.Int)
	for i := 0; i < windows; i++ {
		row := make([]*big.Int, 16)
		row[0] = one
		row[1] = base
		for d := 2; d < 16; d++ {
			row[d] = new(big.Int).Mod(tmp.Mul(row[d-1], base), pk.N2)
		}
		fb.table[i] = row
		// Next window's base is h^(2^(4(i+1))) = base^16.
		next := new(big.Int).Mod(tmp.Mul(row[15], base), pk.N2)
		base = next
	}
	pk.fb = fb
	return nil
}

// randUnit draws a uniform random element of Z*_N.
func randUnit(n *big.Int) (*big.Int, error) {
	for {
		r, err := rand.Int(rand.Reader, n)
		if err != nil {
			return nil, err
		}
		if r.Sign() > 0 && new(big.Int).GCD(nil, nil, r, n).Cmp(one) == 0 {
			return r, nil
		}
	}
}

// fixedBase is a 4-bit-window fixed-base exponentiation table:
// table[i][d] = h^(d·2^(4i)) mod N².
type fixedBase struct {
	table [][]*big.Int
}

// pow computes h^a mod n2 as the product of one table entry per non-zero
// 4-bit window of a.
func (fb *fixedBase) pow(a, n2 *big.Int) *big.Int {
	out := big.NewInt(1)
	tmp := new(big.Int)
	words := a.Bits()
	for i := range fb.table {
		if d := nibbleAt(words, i); d != 0 {
			out.Mod(tmp.Mul(out, fb.table[i][d]), n2)
		}
	}
	return out
}

// nibbleAt returns the i-th 4-bit window of the little-endian word slice
// (0 past the end).
func nibbleAt(words []big.Word, i int) uint {
	const perWord = bits.UintSize / 4
	w := i / perWord
	if w >= len(words) {
		return 0
	}
	return uint(words[w]>>(4*(i%perWord))) & 0xF
}

func lFunc(x, n *big.Int) *big.Int {
	out := new(big.Int).Sub(x, one)
	return out.Div(out, n)
}

// Encrypt encrypts m (must satisfy 0 <= m < N). With a precomputed key
// the r^N blinding factor comes from the fixed-base table; otherwise the
// original full modular exponentiation runs.
func (pk *PublicKey) Encrypt(m *big.Int) (*Ciphertext, error) {
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return nil, fmt.Errorf("paillier: plaintext out of range [0, N)")
	}
	// g^m = (n+1)^m = 1 + n*m mod n^2 (binomial shortcut).
	gm := new(big.Int).Mul(pk.N, m)
	gm.Add(gm, one)
	gm.Mod(gm, pk.N2)
	var rn *big.Int
	if pk.fb != nil {
		a, err := randUnit(pk.N)
		if err != nil {
			return nil, err
		}
		rn = pk.fb.pow(a, pk.N2)
	} else {
		r, err := randUnit(pk.N)
		if err != nil {
			return nil, err
		}
		rn = new(big.Int).Exp(r, pk.N, pk.N2)
	}
	c := gm.Mul(gm, rn)
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c}, nil
}

// Decrypt recovers the plaintext in [0, N). With a precomputed key the
// two half-size CRT exponentiations run; the recombined plaintext is the
// identical integer the legacy single-modulus path produces.
func (sk *PrivateKey) Decrypt(ct *Ciphertext) (*big.Int, error) {
	if ct == nil || ct.C == nil {
		return nil, errors.New("paillier: nil ciphertext")
	}
	if sk.crt != nil {
		return sk.decryptCRT(ct.C), nil
	}
	cl := new(big.Int).Exp(ct.C, sk.Lambda, sk.N2)
	m := lFunc(cl, sk.N)
	m.Mul(m, sk.Mu)
	m.Mod(m, sk.N)
	return m, nil
}

// decryptCRT decrypts mod p and q separately and recombines with Garner's
// formula: m = mp + p·((mq-mp)·p^-1 mod q), the unique value in [0, N).
func (sk *PrivateKey) decryptCRT(c *big.Int) *big.Int {
	crt := sk.crt
	mp := lFunc(new(big.Int).Exp(c, crt.pm1, crt.p2), sk.P)
	mp.Mul(mp, crt.hp)
	mp.Mod(mp, sk.P)
	mq := lFunc(new(big.Int).Exp(c, crt.qm1, crt.q2), sk.Q)
	mq.Mul(mq, crt.hq)
	mq.Mod(mq, sk.Q)
	h := mq.Sub(mq, mp)
	h.Mul(h, crt.pinv)
	h.Mod(h, sk.Q)
	m := h.Mul(h, sk.P)
	return m.Add(m, mp)
}

// Add returns the ciphertext of a+b.
func (pk *PublicKey) Add(a, b *Ciphertext) *Ciphertext {
	c := new(big.Int).Mul(a.C, b.C)
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c}
}

// MulConst returns the ciphertext of k*a for plaintext scalar k >= 0. A
// negative k is rejected: big.Int.Exp with a negative exponent would
// silently compute a modular inverse, yielding a ciphertext of -|k|*a's
// inverse rather than an error.
func (pk *PublicKey) MulConst(a *Ciphertext, k *big.Int) (*Ciphertext, error) {
	if a == nil || a.C == nil {
		return nil, errors.New("paillier: nil ciphertext")
	}
	if k.Sign() < 0 {
		return nil, fmt.Errorf("paillier: negative scalar %v in MulConst", k)
	}
	return &Ciphertext{C: new(big.Int).Exp(a.C, k, pk.N2)}, nil
}

// --- Fixed-point float encoding ---------------------------------------

// FracBits is the default number of fractional bits used when encoding
// float64 model parameters as Paillier plaintexts.
const FracBits = 40

// EncodeFloat converts x to a fixed-point plaintext modulo N. Negative
// values wrap to the top half of [0, N), mirroring two's complement.
func (pk *PublicKey) EncodeFloat(x float64, fracBits uint) (*big.Int, error) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return nil, fmt.Errorf("paillier: cannot encode %v", x)
	}
	scaled := new(big.Float).Mul(big.NewFloat(x), new(big.Float).SetInt(new(big.Int).Lsh(one, fracBits)))
	m, _ := scaled.Int(nil)
	m.Mod(m, pk.N)
	return m, nil
}

// DecodeFloat reverses EncodeFloat: plaintexts in the top half of [0, N)
// decode as negative values, mirroring two's complement. Homomorphic sums
// of encoded values decode correctly as long as the true sum stays within
// (-N/2, N/2) at the fixed-point scale.
func (pk *PublicKey) DecodeFloat(m *big.Int, fracBits uint) float64 {
	half := new(big.Int).Rsh(pk.N, 1)
	v := new(big.Int).Set(m)
	if v.Cmp(half) > 0 {
		v.Sub(v, pk.N)
	}
	f := new(big.Float).SetInt(v)
	f.Quo(f, new(big.Float).SetInt(new(big.Int).Lsh(one, fracBits)))
	out, _ := f.Float64()
	return out
}

// EncryptVector encrypts a float vector with FracBits fixed-point scaling.
// Elements are independent big-int exponentiations — the dominant cost of
// Paillier fusion (Figure 5f) — so they are encrypted in parallel; each
// element draws its own randomness from crypto/rand, which is safe for
// concurrent use.
func (pk *PublicKey) EncryptVector(xs []float64) ([]*Ciphertext, error) {
	return parallel.MapErr(xs, 1, func(i int, x float64) (*Ciphertext, error) {
		m, err := pk.EncodeFloat(x, FracBits)
		if err != nil {
			return nil, fmt.Errorf("paillier: element %d: %w", i, err)
		}
		return pk.Encrypt(m)
	})
}

// DecryptVector decrypts a ciphertext vector back to floats. Elements are
// decrypted in parallel; decryption is deterministic, so the result is
// identical to the serial loop.
func (sk *PrivateKey) DecryptVector(cts []*Ciphertext) ([]float64, error) {
	return parallel.MapErr(cts, 1, func(i int, ct *Ciphertext) (float64, error) {
		m, err := sk.Decrypt(ct)
		if err != nil {
			return 0, fmt.Errorf("paillier: element %d: %w", i, err)
		}
		return sk.DecodeFloat(m, FracBits), nil
	})
}

// AddVectors returns the elementwise homomorphic sum of ciphertext vectors.
// Coordinates are summed in parallel; within a coordinate the vectors are
// multiplied in input order (modular products commute anyway, so the result
// is identical regardless).
func (pk *PublicKey) AddVectors(vs ...[]*Ciphertext) ([]*Ciphertext, error) {
	if len(vs) == 0 {
		return nil, errors.New("paillier: no vectors to add")
	}
	n := len(vs[0])
	for _, v := range vs[1:] {
		if len(v) != n {
			return nil, fmt.Errorf("paillier: vector length mismatch: %d vs %d", len(v), n)
		}
	}
	out := make([]*Ciphertext, n)
	parallel.For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			acc := vs[0][i]
			for _, v := range vs[1:] {
				acc = pk.Add(acc, v[i])
			}
			out[i] = acc
		}
	})
	return out, nil
}
