// Package paillier implements the Paillier additively homomorphic
// cryptosystem on math/big, plus fixed-point encoding so model-update
// vectors of float64s can be encrypted, summed under encryption by an
// aggregator, and decrypted/averaged by the parties. This backs the
// Paillier-based fusion aggregation algorithm the paper evaluates in
// Figures 5c and 5f.
//
// The scheme: n = p*q for safe-size primes p, q; g = n+1;
// Enc(m) = g^m * r^n mod n^2; Dec(c) = L(c^lambda mod n^2) * mu mod n where
// L(x) = (x-1)/n. Ciphertext products are plaintext sums, and ciphertext
// exponentiation is plaintext scalar multiplication.
package paillier

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math"
	"math/big"

	"deta/internal/parallel"
)

var one = big.NewInt(1)

// PublicKey encrypts and operates on ciphertexts.
type PublicKey struct {
	N  *big.Int // modulus
	N2 *big.Int // N^2, cached
	G  *big.Int // generator, N+1
}

// PrivateKey decrypts. It embeds the public key.
type PrivateKey struct {
	PublicKey
	Lambda *big.Int // lcm(p-1, q-1)
	Mu     *big.Int // (L(g^lambda mod n^2))^-1 mod n
}

// Ciphertext is an element of Z*_{n^2}.
type Ciphertext struct {
	C *big.Int
}

// GenerateKey creates a Paillier key pair with an n of the given bit size.
// Bit sizes of 512-2048 are typical; tests use small keys for speed.
func GenerateKey(bits int) (*PrivateKey, error) {
	if bits < 128 {
		return nil, fmt.Errorf("paillier: key size %d too small (min 128)", bits)
	}
	for {
		p, err := rand.Prime(rand.Reader, bits/2)
		if err != nil {
			return nil, err
		}
		q, err := rand.Prime(rand.Reader, bits/2)
		if err != nil {
			return nil, err
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		pm1 := new(big.Int).Sub(p, one)
		qm1 := new(big.Int).Sub(q, one)
		gcd := new(big.Int).GCD(nil, nil, pm1, qm1)
		lambda := new(big.Int).Mul(pm1, qm1)
		lambda.Div(lambda, gcd)

		n2 := new(big.Int).Mul(n, n)
		g := new(big.Int).Add(n, one)
		// mu = (L(g^lambda mod n^2))^-1 mod n
		gl := new(big.Int).Exp(g, lambda, n2)
		l := lFunc(gl, n)
		mu := new(big.Int).ModInverse(l, n)
		if mu == nil {
			continue // degenerate; retry
		}
		return &PrivateKey{
			PublicKey: PublicKey{N: n, N2: n2, G: g},
			Lambda:    lambda,
			Mu:        mu,
		}, nil
	}
}

func lFunc(x, n *big.Int) *big.Int {
	out := new(big.Int).Sub(x, one)
	return out.Div(out, n)
}

// Encrypt encrypts m (must satisfy 0 <= m < N).
func (pk *PublicKey) Encrypt(m *big.Int) (*Ciphertext, error) {
	if m.Sign() < 0 || m.Cmp(pk.N) >= 0 {
		return nil, fmt.Errorf("paillier: plaintext out of range [0, N)")
	}
	var r *big.Int
	for {
		var err error
		r, err = rand.Int(rand.Reader, pk.N)
		if err != nil {
			return nil, err
		}
		if r.Sign() > 0 && new(big.Int).GCD(nil, nil, r, pk.N).Cmp(one) == 0 {
			break
		}
	}
	// g^m = (n+1)^m = 1 + n*m mod n^2 (binomial shortcut).
	gm := new(big.Int).Mul(pk.N, m)
	gm.Add(gm, one)
	gm.Mod(gm, pk.N2)
	rn := new(big.Int).Exp(r, pk.N, pk.N2)
	c := gm.Mul(gm, rn)
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c}, nil
}

// Decrypt recovers the plaintext in [0, N).
func (sk *PrivateKey) Decrypt(ct *Ciphertext) (*big.Int, error) {
	if ct == nil || ct.C == nil {
		return nil, errors.New("paillier: nil ciphertext")
	}
	cl := new(big.Int).Exp(ct.C, sk.Lambda, sk.N2)
	m := lFunc(cl, sk.N)
	m.Mul(m, sk.Mu)
	m.Mod(m, sk.N)
	return m, nil
}

// Add returns the ciphertext of a+b.
func (pk *PublicKey) Add(a, b *Ciphertext) *Ciphertext {
	c := new(big.Int).Mul(a.C, b.C)
	c.Mod(c, pk.N2)
	return &Ciphertext{C: c}
}

// MulConst returns the ciphertext of k*a for plaintext scalar k >= 0. A
// negative k is rejected: big.Int.Exp with a negative exponent would
// silently compute a modular inverse, yielding a ciphertext of -|k|*a's
// inverse rather than an error.
func (pk *PublicKey) MulConst(a *Ciphertext, k *big.Int) (*Ciphertext, error) {
	if a == nil || a.C == nil {
		return nil, errors.New("paillier: nil ciphertext")
	}
	if k.Sign() < 0 {
		return nil, fmt.Errorf("paillier: negative scalar %v in MulConst", k)
	}
	return &Ciphertext{C: new(big.Int).Exp(a.C, k, pk.N2)}, nil
}

// --- Fixed-point float encoding ---------------------------------------

// FracBits is the default number of fractional bits used when encoding
// float64 model parameters as Paillier plaintexts.
const FracBits = 40

// EncodeFloat converts x to a fixed-point plaintext modulo N. Negative
// values wrap to the top half of [0, N), mirroring two's complement.
func (pk *PublicKey) EncodeFloat(x float64, fracBits uint) (*big.Int, error) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return nil, fmt.Errorf("paillier: cannot encode %v", x)
	}
	scaled := new(big.Float).Mul(big.NewFloat(x), new(big.Float).SetInt(new(big.Int).Lsh(one, fracBits)))
	m, _ := scaled.Int(nil)
	m.Mod(m, pk.N)
	return m, nil
}

// DecodeFloat reverses EncodeFloat: plaintexts in the top half of [0, N)
// decode as negative values, mirroring two's complement. Homomorphic sums
// of encoded values decode correctly as long as the true sum stays within
// (-N/2, N/2) at the fixed-point scale.
func (pk *PublicKey) DecodeFloat(m *big.Int, fracBits uint) float64 {
	half := new(big.Int).Rsh(pk.N, 1)
	v := new(big.Int).Set(m)
	if v.Cmp(half) > 0 {
		v.Sub(v, pk.N)
	}
	f := new(big.Float).SetInt(v)
	f.Quo(f, new(big.Float).SetInt(new(big.Int).Lsh(one, fracBits)))
	out, _ := f.Float64()
	return out
}

// EncryptVector encrypts a float vector with FracBits fixed-point scaling.
// Elements are independent big-int exponentiations — the dominant cost of
// Paillier fusion (Figure 5f) — so they are encrypted in parallel; each
// element draws its own randomness from crypto/rand, which is safe for
// concurrent use.
func (pk *PublicKey) EncryptVector(xs []float64) ([]*Ciphertext, error) {
	return parallel.MapErr(xs, 1, func(i int, x float64) (*Ciphertext, error) {
		m, err := pk.EncodeFloat(x, FracBits)
		if err != nil {
			return nil, fmt.Errorf("paillier: element %d: %w", i, err)
		}
		return pk.Encrypt(m)
	})
}

// DecryptVector decrypts a ciphertext vector back to floats. Elements are
// decrypted in parallel; decryption is deterministic, so the result is
// identical to the serial loop.
func (sk *PrivateKey) DecryptVector(cts []*Ciphertext) ([]float64, error) {
	return parallel.MapErr(cts, 1, func(i int, ct *Ciphertext) (float64, error) {
		m, err := sk.Decrypt(ct)
		if err != nil {
			return 0, fmt.Errorf("paillier: element %d: %w", i, err)
		}
		return sk.DecodeFloat(m, FracBits), nil
	})
}

// AddVectors returns the elementwise homomorphic sum of ciphertext vectors.
// Coordinates are summed in parallel; within a coordinate the vectors are
// multiplied in input order (modular products commute anyway, so the result
// is identical regardless).
func (pk *PublicKey) AddVectors(vs ...[]*Ciphertext) ([]*Ciphertext, error) {
	if len(vs) == 0 {
		return nil, errors.New("paillier: no vectors to add")
	}
	n := len(vs[0])
	for _, v := range vs[1:] {
		if len(v) != n {
			return nil, fmt.Errorf("paillier: vector length mismatch: %d vs %d", len(v), n)
		}
	}
	out := make([]*Ciphertext, n)
	parallel.For(n, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			acc := vs[0][i]
			for _, v := range vs[1:] {
				acc = pk.Add(acc, v[i])
			}
			out[i] = acc
		}
	})
	return out, nil
}
