package paillier

import (
	"fmt"
	"testing"

	"deta/internal/parallel"
)

func benchKey(b *testing.B) *PrivateKey {
	b.Helper()
	sk, err := GenerateKey(256)
	if err != nil {
		b.Fatal(err)
	}
	return sk
}

func benchVec(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i%23)*0.5 - 5
	}
	return xs
}

// Each element of a vector op is an independent big-int Exp — the dominant
// cost Figure 5f measures. These benchmarks pin the per-kernel scaling
// across worker counts (see EXPERIMENTS.md).
func BenchmarkEncryptVector(b *testing.B) {
	sk := benchKey(b)
	xs := benchVec(64)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			prev := parallel.SetWorkers(workers)
			defer parallel.SetWorkers(prev)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sk.EncryptVector(xs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDecryptVector(b *testing.B) {
	sk := benchKey(b)
	cts, err := sk.EncryptVector(benchVec(64))
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			prev := parallel.SetWorkers(workers)
			defer parallel.SetWorkers(prev)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sk.DecryptVector(cts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAddVectors(b *testing.B) {
	sk := benchKey(b)
	xs := benchVec(256)
	var vecs [][]*Ciphertext
	for p := 0; p < 4; p++ {
		cts, err := sk.EncryptVector(xs)
		if err != nil {
			b.Fatal(err)
		}
		vecs = append(vecs, cts)
	}
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			prev := parallel.SetWorkers(workers)
			defer parallel.SetWorkers(prev)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sk.AddVectors(vecs...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
