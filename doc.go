// Package deta is a from-scratch, stdlib-only Go reproduction of
// "DeTA: Minimizing Data Leaks in Federated Learning via Decentralized and
// Trustworthy Aggregation" (EuroSys 2024).
//
// The implementation lives under internal/: see internal/core for DeTA
// itself (model mapper, parameter shuffling, decentralized attested
// aggregators), internal/fl for the baseline FL framework, internal/attack
// for the DLG/iDLG/IG data-reconstruction attacks, and
// internal/experiments for the runners that regenerate every table and
// figure of the paper. README.md and DESIGN.md document the architecture;
// EXPERIMENTS.md records paper-vs-measured results.
package deta
