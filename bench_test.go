package deta_test

// One testing.B benchmark per paper artifact (Tables 1-3, Figures 5-7) plus
// ablation benches for the design choices DESIGN.md calls out. Each bench
// drives the same runner as cmd/deta-bench at FastScale, so
//
//	go test -bench=. -benchmem
//
// regenerates every result at laptop scale; raise the scale with
// cmd/deta-bench for paper-shaped runs.

import (
	"io"
	"testing"

	"deta/internal/core"
	"deta/internal/experiments"
	"deta/internal/rng"
	"deta/internal/tensor"
)

func benchScale() experiments.Scale {
	sc := experiments.FastScale()
	// Keep each bench iteration bounded.
	sc.AttackImages = 2
	sc.IGImages = 1
	sc.CIFARRounds = 2
	sc.AttackIters = 40
	sc.IGIters = 40
	sc.RVLRounds = 2
	sc.SamplesPerParty = 16
	sc.TestSamples = 16
	return sc
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	sc := benchScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(id, sc, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1DLG regenerates Table 1 (DLG MSE buckets).
func BenchmarkTable1DLG(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2IDLG regenerates Table 2 (iDLG MSE buckets).
func BenchmarkTable2IDLG(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3IG regenerates Table 3 (IG cosine-distance buckets).
func BenchmarkTable3IG(b *testing.B) { benchExperiment(b, "table3") }

// BenchmarkFig3Reconstructions regenerates Figure 3 (DLG/iDLG examples).
func BenchmarkFig3Reconstructions(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4Reconstructions regenerates Figure 4 (IG examples).
func BenchmarkFig4Reconstructions(b *testing.B) { benchExperiment(b, "fig4") }

// BenchmarkFig5aMNISTIterAvg regenerates Figures 5a+5d.
func BenchmarkFig5aMNISTIterAvg(b *testing.B) { benchExperiment(b, "fig5a") }

// BenchmarkFig5bMNISTMedian regenerates Figures 5b+5e.
func BenchmarkFig5bMNISTMedian(b *testing.B) { benchExperiment(b, "fig5b") }

// BenchmarkFig5cMNISTPaillier regenerates Figures 5c+5f.
func BenchmarkFig5cMNISTPaillier(b *testing.B) { benchExperiment(b, "fig5c") }

// BenchmarkFig6CIFAR regenerates Figure 6 (4 vs 8 parties).
func BenchmarkFig6CIFAR(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7RVLCDIP regenerates Figure 7 (non-IID VGG-16 transfer).
func BenchmarkFig7RVLCDIP(b *testing.B) { benchExperiment(b, "fig7") }

// --- Ablation micro-benchmarks ------------------------------------------

// BenchmarkAblationTransform measures Trans() — partition + shuffle of one
// model update across three aggregators — per update size.
func BenchmarkAblationTransform(b *testing.B) {
	for _, n := range []int{1 << 12, 1 << 16} {
		b.Run(sizeName(n), func(b *testing.B) {
			m, err := core.NewMapper(n, core.EqualProportions(3), []byte("bench"))
			if err != nil {
				b.Fatal(err)
			}
			sh, err := core.NewShuffler([]byte("bench-permutation-key-0123456789"))
			if err != nil {
				b.Fatal(err)
			}
			v := randomVector(n)
			roundID := []byte("bench-round")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Transform(m, sh, v, roundID, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationInverseTransform measures Trans^-1().
func BenchmarkAblationInverseTransform(b *testing.B) {
	const n = 1 << 16
	m, err := core.NewMapper(n, core.EqualProportions(3), []byte("bench"))
	if err != nil {
		b.Fatal(err)
	}
	sh, err := core.NewShuffler([]byte("bench-permutation-key-0123456789"))
	if err != nil {
		b.Fatal(err)
	}
	v := randomVector(n)
	roundID := []byte("bench-round")
	frags, err := core.Transform(m, sh, v, roundID, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.InverseTransform(m, sh, frags, roundID, true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationAuth measures the two-phase authentication cost table.
func BenchmarkAblationAuth(b *testing.B) { benchExperiment(b, "ablation-auth") }

// BenchmarkAblationAggregatorSweep measures the K-sweep ablation.
func BenchmarkAblationAggregatorSweep(b *testing.B) { benchExperiment(b, "ablation-aggs") }

func sizeName(n int) string {
	switch {
	case n >= 1<<20:
		return "1M"
	case n >= 1<<16:
		return "64k"
	case n >= 1<<12:
		return "4k"
	}
	return "small"
}

func randomVector(n int) tensor.Vector {
	st := rng.NewStream([]byte("bench-values"), "v")
	v := make(tensor.Vector, n)
	for i := range v {
		v[i] = st.NormFloat64()
	}
	return v
}
