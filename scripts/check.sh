#!/bin/sh
# check.sh — the repo's full verification gate: vet, build, the whole test
# suite under the race detector, and the chaos end-to-end test (injected
# faults + aggregator kill/restart, fixed seed 0xDE7A in chaos_test.go)
# run explicitly so its pass/fail is visible on its own line.
set -eu
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

# The baseline holds the acknowledged allocfree burn-down sites only; any
# NEW finding — including a malformed //perf:hotpath annotation, which the
# allocfree analyzer reports as a finding in its own right — fails the gate.
echo "== deta-lint (security, determinism & concurrency invariants)"
go run ./cmd/deta-lint -baseline lint-baseline.json ./...

echo "== go build ./..."
go build ./...

echo "== go test -race ./..."
go test -race ./...

echo "== chaos e2e (fault injection + aggregator kill/restart, -race)"
go test -race -count=1 -run 'TestChaosRestartBitIdenticalModel' -v ./internal/core

echo "== churn chaos e2e (party death + evict + rejoin + aggregator restart, -race)"
go test -race -count=1 -run 'TestChaosChurnEvictRejoinBitIdentical' -v ./internal/core

echo "== perf vs tracked baselines: data-plane areas gate hard"
go run ./cmd/deta-bench -perf -perf-area core,transport,paillier -perf-baseline .

echo "== perf vs tracked baselines: advisory areas (warn-only: fsync is machine-dependent, lint cost tracks tree size)"
go run ./cmd/deta-bench -perf -perf-area agg,journal,lint -perf-baseline . ||
	echo "WARNING: perf regression vs BENCH_*.json baselines (exit $?)." \
		"Investigate, or refresh with: go run ./cmd/deta-bench -perf -perf-baseline-write"

echo "== all checks passed"
