// Quickstart: train a small federated model with DeTA — decentralized,
// shuffled, attested aggregation — and verify the result is bit-identical
// to a classic single-aggregator run.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"deta/internal/agg"
	"deta/internal/core"
	"deta/internal/dataset"
	"deta/internal/fl"
	"deta/internal/nn"
)

func main() {
	// A synthetic MNIST-like problem: 4 parties, IID shards.
	spec := dataset.Spec{Name: "quickstart", C: 1, H: 16, W: 16, Classes: 10}
	train, test := dataset.TrainTest(spec, 4*32, 32, []byte("quickstart-data"))
	shards := dataset.SplitIID(train, 4, []byte("quickstart-split"))

	build := func() *nn.Network { return nn.ConvNet8(spec.C, spec.H, spec.W, spec.Classes) }
	cfg := fl.Config{
		Mode: fl.FedAvg, Rounds: 5, LocalEpochs: 2, BatchSize: 8,
		LR: 0.05, Momentum: 0.9, Seed: []byte("quickstart-cfg"),
	}
	parties := func() []*fl.Party {
		ps := make([]*fl.Party, len(shards))
		for i, s := range shards {
			ps[i] = fl.NewParty(fmt.Sprintf("P%d", i+1), build, s, cfg)
		}
		return ps
	}

	// DeTA: three SEV-attested aggregators, randomized partitioning,
	// per-round parameter shuffling. Setup performs the full two-phase
	// authentication protocol.
	deta := &core.Session{
		Cfg:          cfg,
		Opts:         core.Options{NumAggregators: 3, Shuffle: true},
		Build:        build,
		Parties:      parties(),
		Test:         test,
		InitSeed:     []byte("quickstart-init"),
		NewAlgorithm: func() agg.Algorithm { return agg.IterativeAverage{} },
	}
	histDeTA, err := deta.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trust bootstrap (Phase I + II): %v\n", deta.SetupLatency)
	fmt.Printf("model mapper: %d params split %v across %d aggregators\n\n",
		deta.Mapper.NumParams(), deta.Mapper.Counts(), deta.Mapper.NumAggregators())

	// Baseline: one central aggregator, same everything.
	ffl := &fl.Session{
		Cfg: cfg, Algorithm: agg.IterativeAverage{}, Build: build,
		Parties: parties(), Test: test, InitSeed: []byte("quickstart-init"),
	}
	histFFL, err := ffl.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("round  DeTA-loss  FFL-loss   DeTA-acc  FFL-acc")
	for i := range histDeTA.Rounds {
		d, f := histDeTA.Rounds[i], histFFL.Rounds[i]
		fmt.Printf("%5d  %9.4f  %9.4f  %8.3f  %8.3f\n",
			d.Round, d.TestLoss, f.TestLoss, d.Accuracy, f.Accuracy)
	}
	final := histDeTA.Final()
	fmt.Printf("\nfinal accuracy: DeTA %.3f vs FFL %.3f (identical by construction)\n",
		final.Accuracy, histFFL.Final().Accuracy)
	fmt.Printf("latency: DeTA %v vs FFL %v\n",
		final.Cumulative, histFFL.Final().Cumulative)
}
