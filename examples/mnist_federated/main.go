// MNIST federated training in the Figure 5 configuration: four parties,
// three SEV-protected aggregators, selectable aggregation algorithm.
//
//	go run ./examples/mnist_federated -algorithm median -rounds 10
package main

import (
	"flag"
	"fmt"
	"log"

	"deta/internal/agg"
	"deta/internal/core"
	"deta/internal/dataset"
	"deta/internal/fl"
	"deta/internal/nn"
)

func main() {
	algorithm := flag.String("algorithm", "avg", "avg | median | trimmed | krum | flame")
	rounds := flag.Int("rounds", 10, "training rounds")
	epochs := flag.Int("epochs", 3, "local epochs per round")
	samples := flag.Int("samples", 48, "samples per party")
	side := flag.Int("side", 16, "image side length (28 = paper scale)")
	aggregators := flag.Int("aggregators", 3, "DeTA aggregator count")
	flag.Parse()

	newAlg, err := pickAlgorithm(*algorithm)
	if err != nil {
		log.Fatal(err)
	}

	spec := dataset.Spec{Name: "mnist-syn", C: 1, H: *side, W: *side, Classes: 10}
	train, test := dataset.TrainTest(spec, 4**samples, *samples, []byte("mnist-example"))
	shards := dataset.SplitIID(train, 4, []byte("mnist-example-split"))
	build := func() *nn.Network { return nn.ConvNet8(spec.C, spec.H, spec.W, spec.Classes) }
	cfg := fl.Config{
		Mode: fl.FedAvg, Rounds: *rounds, LocalEpochs: *epochs, BatchSize: 8,
		LR: 0.05, Momentum: 0.9, Seed: []byte("mnist-example-cfg"),
	}
	ps := make([]*fl.Party, 4)
	for i := range ps {
		ps[i] = fl.NewParty(fmt.Sprintf("P%d", i+1), build, shards[i], cfg)
	}
	session := &core.Session{
		Cfg:          cfg,
		Opts:         core.Options{NumAggregators: *aggregators, Shuffle: true},
		Build:        build,
		Parties:      ps,
		Test:         test,
		InitSeed:     []byte("mnist-example-init"),
		NewAlgorithm: newAlg,
	}
	hist, err := session.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DeTA, %s, %d aggregators, 4 parties, %d rounds x %d epochs\n\n",
		*algorithm, *aggregators, *rounds, *epochs)
	fmt.Println("round  train-loss  test-loss  accuracy  cumulative")
	for _, r := range hist.Rounds {
		fmt.Printf("%5d  %10.4f  %9.4f  %8.3f  %v\n",
			r.Round, r.TrainLoss, r.TestLoss, r.Accuracy, r.Cumulative.Round(1e6))
	}
}

func pickAlgorithm(name string) (func() agg.Algorithm, error) {
	switch name {
	case "avg":
		return func() agg.Algorithm { return agg.IterativeAverage{} }, nil
	case "median":
		return func() agg.Algorithm { return agg.CoordinateMedian{} }, nil
	case "trimmed":
		return func() agg.Algorithm { return agg.TrimmedMean{Trim: 1} }, nil
	case "krum":
		return func() agg.Algorithm { return agg.Krum{F: 1} }, nil
	case "flame":
		return func() agg.Algorithm { return agg.FLAMELite{} }, nil
	}
	return nil, fmt.Errorf("unknown algorithm %q", name)
}
