// Paillier-based fusion under DeTA: parties encrypt their model-update
// fragments, aggregators sum ciphertexts without ever seeing plaintext,
// and parties decrypt the fused result. Demonstrates the staged API and
// measures where the time goes — the effect behind Figure 5f (DeTA's
// partitioning shrinks each aggregator's ciphertext workload).
//
//	go run ./examples/paillier_fusion -params 2000 -bits 512
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"deta/internal/agg"
	"deta/internal/core"
	"deta/internal/paillier"
	"deta/internal/rng"
	"deta/internal/tensor"
)

func main() {
	params := flag.Int("params", 1000, "model update size")
	bits := flag.Int("bits", 256, "Paillier modulus bits")
	parties := flag.Int("parties", 4, "party count")
	aggregators := flag.Int("aggregators", 3, "aggregator count")
	flag.Parse()

	fusion, err := agg.NewPaillierFusion(*bits)
	if err != nil {
		log.Fatal(err)
	}

	// Party updates.
	st := rng.NewStream([]byte("paillier-example"), "updates")
	updates := make([]tensor.Vector, *parties)
	for p := range updates {
		v := make(tensor.Vector, *params)
		for i := range v {
			v[i] = st.NormFloat64()
		}
		updates[p] = v
	}

	// Plain mean for comparison.
	want, err := (agg.IterativeAverage{}).Aggregate(updates, nil)
	if err != nil {
		log.Fatal(err)
	}

	// DeTA: partition each update, run the encrypt/fuse/decrypt pipeline
	// per aggregator.
	mapper, err := core.NewMapper(*params, core.EqualProportions(*aggregators), []byte("paillier-mapper"))
	if err != nil {
		log.Fatal(err)
	}
	var encTime, fuseTime, decTime time.Duration
	fused := make([]tensor.Vector, *aggregators)
	for j := 0; j < *aggregators; j++ {
		// Party side: encrypt fragment j of every update.
		perParty := make([][]*paillier.Ciphertext, 0, *parties)
		for _, u := range updates {
			frags, err := mapper.Partition(u)
			if err != nil {
				log.Fatal(err)
			}
			start := time.Now()
			enc, err := fusion.EncryptUpdate(frags[j])
			encTime += time.Since(start)
			if err != nil {
				log.Fatal(err)
			}
			perParty = append(perParty, enc)
		}
		// Aggregator side: ciphertext-only fusion.
		start := time.Now()
		sum, err := fusion.FuseCiphertexts(perParty...)
		fuseTime += time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		// Party side: decrypt the average.
		start = time.Now()
		fused[j], err = fusion.DecryptAverage(sum, *parties)
		decTime += time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
	}
	got, err := mapper.Merge(fused)
	if err != nil {
		log.Fatal(err)
	}

	maxErr := 0.0
	for i := range want {
		if d := abs(got[i] - want[i]); d > maxErr {
			maxErr = d
		}
	}
	fmt.Printf("parameters:      %d (x%d parties, %d aggregators, %d-bit keys)\n", *params, *parties, *aggregators, *bits)
	fmt.Printf("encrypt (party): %v\n", encTime)
	fmt.Printf("fuse (agg, ciphertext-only): %v\n", fuseTime)
	fmt.Printf("decrypt (party): %v\n", decTime)
	fmt.Printf("max |paillier - plaintext| = %.3g (fixed-point precision)\n", maxErr)
	fmt.Println("\nencryption dominates; partitioning lets the per-aggregator pipelines run in parallel.")
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
