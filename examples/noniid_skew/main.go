// Non-IID federated training in the Figure 7 configuration: eight parties
// with a 90-10 class skew (each party's shard is dominated by two classes),
// VGG-16-lite transfer learning on document-like images, DeTA aggregation.
// Prints the per-party class histograms and the convergence trace.
//
//	go run ./examples/noniid_skew -rounds 5
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"deta/internal/agg"
	"deta/internal/core"
	"deta/internal/dataset"
	"deta/internal/fl"
	"deta/internal/nn"
)

func main() {
	rounds := flag.Int("rounds", 5, "training rounds")
	samples := flag.Int("samples", 32, "samples per party")
	flag.Parse()

	spec := dataset.RVLCDIP
	train, test := dataset.TrainTest(spec, 8**samples, *samples, []byte("skew-example"))
	shards := dataset.SplitSkew(train, 8, 2, 0.9, []byte("skew-example-split"))

	fmt.Println("per-party class histograms (90-10 skew, 2 dominant classes each):")
	for p, shard := range shards {
		fmt.Printf("  P%d: %v\n", p+1, dataset.ClassHistogram(shard))
	}

	build := func() *nn.Network {
		net, head := nn.VGG16Lite(spec.C, spec.H, spec.W, spec.Classes)
		// Transfer learning: the convolutional stack plays the paper's
		// ImageNet-pretrained VGG-16; only the replaced FC head trains.
		net.FreezePrefix(head)
		return net
	}
	cfg := fl.Config{
		Mode: fl.FedAvg, Rounds: *rounds, LocalEpochs: 1, BatchSize: 8,
		LR: 0.05, Momentum: 0.9, Seed: []byte("skew-example-cfg"),
	}
	ps := make([]*fl.Party, 8)
	for i := range ps {
		ps[i] = fl.NewParty(fmt.Sprintf("P%d", i+1), build, shards[i], cfg)
	}
	session := &core.Session{
		Cfg:          cfg,
		Opts:         core.Options{NumAggregators: 3, Shuffle: true},
		Build:        build,
		Parties:      ps,
		Test:         test,
		InitSeed:     []byte("skew-example-init"),
		NewAlgorithm: func() agg.Algorithm { return agg.IterativeAverage{} },
	}
	hist, err := session.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nround  train-loss  test-loss  accuracy")
	for _, r := range hist.Rounds {
		fmt.Printf("%5d  %10.4f  %9.4f  %8.3f\n", r.Round, r.TrainLoss, r.TestLoss, r.Accuracy)
	}

	// Per-class view: under 90-10 skew, class-level recall is the honest
	// picture (a few dominant classes can hide the tail).
	cm, err := fl.EvaluateConfusion(build, session.FinalParams, test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nconfusion matrix of the final global model:")
	var sb strings.Builder
	cm.Render(&sb)
	fmt.Print(sb.String())
}
