// Attack demo: run Deep Leakage from Gradients against a victim's gradient
// twice — once with the full, in-order gradient (no DeTA: reconstruction
// succeeds) and once with the fragment a breached DeTA aggregator would
// actually hold (partitioned + shuffled: reconstruction fails). Prints the
// images as ASCII so the difference is visible.
//
//	go run ./examples/attack_demo
package main

import (
	"fmt"
	"log"

	"deta/internal/attack"
	"deta/internal/dataset"
	"deta/internal/nn"
	"deta/internal/tensor"
)

const side = 12

func main() {
	// Victim: one training image and its loss gradient on a randomly
	// initialized LeNet (the DLG setting).
	spec := dataset.Spec{Name: "attack-demo", C: 1, H: side, W: side, Classes: 10}
	victim := dataset.Make(spec, 1, []byte("attack-demo-data")).At(0)

	net := nn.LeNetDLG(1, side, side, spec.Classes)
	net.Init([]byte("attack-demo-model"))
	oracle := attack.NewOracle(net)
	grad, err := oracle.VictimGradient(victim.X, victim.Label)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ground truth:")
	printImage(victim.X)

	cfg := attack.DLGConfig{Iterations: 250, LR: 0.3}
	for _, sc := range []attack.Scenario{attack.ScenarioFull, attack.ScenarioP06Shuffle} {
		obs, err := attack.Observe(grad, sc, []byte("attack-demo-mapper"), []byte("round-1"))
		if err != nil {
			log.Fatal(err)
		}
		res, err := attack.DLG(oracle, obs, victim.X, victim.Label, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nDLG reconstruction, scenario %q: MSE %.4g\n", sc.Name, res.MSE)
		printImage(tensor.ClampRange(res.Recon.Clone(), 0, 1))
		if res.MSE < 1e-3 {
			fmt.Println("-> recognizable reconstruction: the gradient leaked the training image")
		} else {
			fmt.Println("-> no recognizable content: DeTA's transform defeated the attack")
		}
	}
}

// printImage renders a [0,1] grayscale image as ASCII.
func printImage(x []float64) {
	const ramp = " .:-=+*#%@"
	for y := 0; y < side; y++ {
		for xx := 0; xx < side; xx++ {
			v := x[y*side+xx]
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			idx := int(v * float64(len(ramp)-1))
			fmt.Printf("%c%c", ramp[idx], ramp[idx])
		}
		fmt.Println()
	}
}
