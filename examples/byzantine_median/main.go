// Byzantine robustness under DeTA: one party uploads poisoned fragments;
// coordinate-median aggregation (running independently inside each
// SEV-protected aggregator, on shuffled fragments) discards the poison,
// while plain averaging is corrupted. Demonstrates the paper's §4.2 claim
// that Byzantine-robust algorithms compose with partitioning and
// shuffling, using the aggregator-node API directly.
//
//	go run ./examples/byzantine_median
package main

import (
	"fmt"
	"log"

	"deta/internal/agg"
	"deta/internal/attest"
	"deta/internal/core"
	"deta/internal/rng"
	"deta/internal/sev"
	"deta/internal/tensor"
)

const paramCount = 1000

func main() {
	// Honest updates cluster around 1.0; the Byzantine party uploads huge
	// opposite-signed values.
	st := rng.NewStream([]byte("byzantine-example"), "updates")
	updates := map[string]tensor.Vector{}
	for _, id := range []string{"P1", "P2", "P3", "P4"} {
		v := make(tensor.Vector, paramCount)
		for i := range v {
			v[i] = 1 + 0.05*st.NormFloat64()
		}
		updates[id] = v
	}
	poison := make(tensor.Vector, paramCount)
	for i := range poison {
		poison[i] = -100
	}
	updates["P5-byzantine"] = poison

	for _, algName := range []string{"iterative-averaging", "coordinate-median"} {
		merged, err := runDeTARound(algName, updates)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s  aggregated mean %+8.3f  (honest updates average ~1.0)\n",
			algName, tensor.Mean(merged))
	}
	fmt.Println("\ncoordinate median survives the Byzantine upload; averaging is destroyed.")
}

// runDeTARound drives one full DeTA round at the aggregator-node API
// level: trust bootstrap, transform, upload to three nodes, fuse, download
// and inverse-transform.
func runDeTARound(algName string, updates map[string]tensor.Vector) (tensor.Vector, error) {
	newAlg := func() agg.Algorithm {
		if algName == "coordinate-median" {
			return agg.CoordinateMedian{}
		}
		return agg.IterativeAverage{}
	}

	// Trust bootstrap: vendor, platform, AP, three provisioned CVMs.
	vendor, err := sev.NewVendor()
	if err != nil {
		return nil, err
	}
	ap := attest.NewProxy(vendor.RAS(), core.OVMF)
	nodes := make([]*core.AggregatorNode, 3)
	for j := range nodes {
		platform, err := sev.NewPlatform(fmt.Sprintf("host-%d", j+1), vendor)
		if err != nil {
			return nil, err
		}
		cvm, err := platform.LaunchCVM(core.OVMF)
		if err != nil {
			return nil, err
		}
		id := fmt.Sprintf("agg-%d", j+1)
		if _, err := ap.Provision(id, platform, cvm); err != nil {
			return nil, err
		}
		nodes[j], err = core.NewAggregatorNode(id, newAlg(), cvm)
		if err != nil {
			return nil, err
		}
	}

	// Shared mapper + shuffler.
	mapper, err := core.NewMapper(paramCount, core.EqualProportions(3), []byte("byz-mapper"))
	if err != nil {
		return nil, err
	}
	broker, err := attest.NewKeyBroker(32)
	if err != nil {
		return nil, err
	}
	broker.RegisterParty("any")
	permKey, err := broker.PermutationKey("any")
	if err != nil {
		return nil, err
	}
	shuffler, err := core.NewShuffler(permKey)
	if err != nil {
		return nil, err
	}
	roundID, err := broker.RoundID(1)
	if err != nil {
		return nil, err
	}

	// Every party (including the Byzantine one) registers and uploads
	// transformed fragments.
	for id := range updates {
		for _, node := range nodes {
			node.Register(id)
		}
	}
	for id, update := range updates {
		frags, err := core.Transform(mapper, shuffler, update, roundID, true)
		if err != nil {
			return nil, err
		}
		for j, node := range nodes {
			if err := node.Upload(1, id, frags[j], 1); err != nil {
				return nil, err
			}
		}
	}

	// Fuse and reassemble.
	merged := make([]tensor.Vector, len(nodes))
	for j, node := range nodes {
		if err := node.Aggregate(1); err != nil {
			return nil, err
		}
		merged[j], err = node.Download(1, "P1")
		if err != nil {
			return nil, err
		}
	}
	return core.InverseTransform(mapper, shuffler, merged, roundID, true)
}
