module deta

go 1.22
