// deta-lint runs the project's static-analysis suite (internal/lint): the
// security and determinism invariants the compiler cannot check, enforced
// mechanically on every build. See DESIGN.md §10.
//
// Usage:
//
//	deta-lint [flags] [packages]
//
// With no packages it lints ./.... Exit status: 0 clean, 1 findings,
// 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"deta/internal/lint"
)

func main() {
	var (
		jsonOut       = flag.Bool("json", false, "emit findings as a JSON array")
		enable        = flag.String("enable", "", "comma-separated analyzers to run (default: all)")
		disable       = flag.String("disable", "", "comma-separated analyzers to skip")
		list          = flag.Bool("list", false, "list analyzers and exit")
		baseline      = flag.String("baseline", "", "suppress findings recorded in this baseline file; fail only on new ones")
		baselineWrite = flag.String("baseline-write", "", "record current findings to this baseline file and exit 0")
		sarifOut      = flag.String("sarif", "", "also write findings (post-baseline) as SARIF 2.1.0 to this file")
	)
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name(), a.Doc())
		}
		return
	}
	analyzers, err := selectAnalyzers(analyzers, *enable, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "deta-lint:", err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "deta-lint:", err)
		os.Exit(2)
	}
	pkgs, err := lint.NewLoader().Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "deta-lint:", err)
		os.Exit(2)
	}

	findings := lint.Run(pkgs, analyzers)
	if *baselineWrite != "" {
		if err := lint.WriteBaseline(*baselineWrite, wd, findings); err != nil {
			fmt.Fprintln(os.Stderr, "deta-lint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "deta-lint: wrote %d finding(s) to baseline %s\n", len(findings), *baselineWrite)
		return
	}
	if *baseline != "" {
		base, err := lint.ReadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "deta-lint:", err)
			os.Exit(2)
		}
		findings = lint.FilterBaseline(findings, base, wd)
	}
	if *sarifOut != "" {
		if err := lint.WriteSARIF(*sarifOut, wd, analyzers, findings); err != nil {
			fmt.Fprintln(os.Stderr, "deta-lint:", err)
			os.Exit(2)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "deta-lint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "deta-lint: %d finding(s) across %d package(s)\n", len(findings), len(pkgs))
		}
		os.Exit(1)
	}
}

// analyzerAliases maps retired analyzer names to their successors so
// existing invocations keep working.
var analyzerAliases = map[string]string{
	"lockio": "lockregion", // replaced by the CFG-based analyzer
}

// selectAnalyzers applies -enable/-disable, validating names so a typo in
// CI fails loudly instead of silently running nothing.
func selectAnalyzers(all []lint.Analyzer, enable, disable string) ([]lint.Analyzer, error) {
	byName := make(map[string]lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name()] = a
	}
	split := func(s string) ([]string, error) {
		if s == "" {
			return nil, nil
		}
		var out []string
		for _, n := range strings.Split(s, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if successor, ok := analyzerAliases[n]; ok {
				n = successor
			}
			if _, ok := byName[n]; !ok {
				return nil, fmt.Errorf("unknown analyzer %q (try -list)", n)
			}
			out = append(out, n)
		}
		return out, nil
	}
	en, err := split(enable)
	if err != nil {
		return nil, err
	}
	dis, err := split(disable)
	if err != nil {
		return nil, err
	}
	selected := all
	if len(en) > 0 {
		selected = selected[:0:0]
		for _, n := range en {
			selected = append(selected, byName[n])
		}
	}
	if len(dis) > 0 {
		skip := make(map[string]bool, len(dis))
		for _, n := range dis {
			skip[n] = true
		}
		var kept []lint.Analyzer
		for _, a := range selected {
			if !skip[a.Name()] {
				kept = append(kept, a)
			}
		}
		selected = kept
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return selected, nil
}
