package main

import (
	"context"
	"testing"
	"time"
)

func TestParseAlgorithm(t *testing.T) {
	cases := map[string]string{
		"avg":       "iterative-averaging",
		"median":    "coordinate-median",
		"trimmed:2": "trimmed-mean-2",
	}
	for in, want := range cases {
		alg, err := parseAlgorithm(in)
		if err != nil {
			t.Errorf("%q: %v", in, err)
			continue
		}
		if alg.Name() != want {
			t.Errorf("%q -> %q, want %q", in, alg.Name(), want)
		}
	}
	for _, bad := range []string{"", "krumm", "trimmed:x", "trimmed"} {
		if _, err := parseAlgorithm(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestDialPeersEmpty(t *testing.T) {
	out, err := dialPeers(context.Background(), nil, "", "name")
	if err != nil || len(out) != 0 {
		t.Fatalf("empty spec: %v, %v", out, err)
	}
}

func TestDialPeersBadEntry(t *testing.T) {
	if _, err := dialPeers(context.Background(), nil, "no-equals-sign", "name"); err == nil {
		t.Fatal("malformed peer entry accepted")
	}
}

// Regression for a goleak finding: livenessTicker used to range over the
// ticker channel with no escape edge, so the goroutine could never exit.
// It must now return promptly when its context is cancelled. The node is
// nil on purpose: with an hour-long interval the loop must reach the
// ctx.Done arm before it ever touches the node.
func TestLivenessTickerStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		livenessTicker(ctx, nil, time.Hour)
		close(done)
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("livenessTicker did not exit on context cancellation")
	}
}
