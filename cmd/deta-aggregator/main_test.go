package main

import (
	"context"
	"testing"
)

func TestParseAlgorithm(t *testing.T) {
	cases := map[string]string{
		"avg":       "iterative-averaging",
		"median":    "coordinate-median",
		"trimmed:2": "trimmed-mean-2",
	}
	for in, want := range cases {
		alg, err := parseAlgorithm(in)
		if err != nil {
			t.Errorf("%q: %v", in, err)
			continue
		}
		if alg.Name() != want {
			t.Errorf("%q -> %q, want %q", in, alg.Name(), want)
		}
	}
	for _, bad := range []string{"", "krumm", "trimmed:x", "trimmed"} {
		if _, err := parseAlgorithm(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestDialPeersEmpty(t *testing.T) {
	out, err := dialPeers(context.Background(), nil, "", "name")
	if err != nil || len(out) != 0 {
		t.Fatalf("empty spec: %v, %v", out, err)
	}
}

func TestDialPeersBadEntry(t *testing.T) {
	if _, err := dialPeers(context.Background(), nil, "no-equals-sign", "name"); err == nil {
		t.Fatal("malformed peer entry accepted")
	}
}
