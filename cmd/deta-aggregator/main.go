// Command deta-aggregator runs one DeTA aggregator: it launches a
// simulated SEV CVM on its host platform, attests it against the remote
// attestation proxy (Phase I, receiving its authentication token into
// encrypted memory), and then serves the aggregation protocol to parties
// over TLS. One aggregator is designated the initiator; it synchronizes
// fusion across its follower peers once all parties have uploaded
// (paper §4.1, "Inter-Aggregator Training Synchronization").
//
//	deta-aggregator -id agg-1 -listen 127.0.0.1:7101 -ap 127.0.0.1:7000 \
//	    -initiator -peers agg-2=127.0.0.1:7102,agg-3=127.0.0.1:7103
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"deta/internal/agg"
	"deta/internal/core"
	"deta/internal/sev"
	"deta/internal/transport"
)

func main() {
	id := flag.String("id", "agg-1", "aggregator identifier")
	listen := flag.String("listen", "127.0.0.1:7101", "address to serve parties on")
	apAddr := flag.String("ap", "127.0.0.1:7000", "attestation proxy address")
	tlsDir := flag.String("tls-dir", "./deta-tls", "TLS materials directory (shared with the AP)")
	tlsName := flag.String("tls-name", "127.0.0.1", "server name expected in the AP/peer certificates")
	algorithm := flag.String("algorithm", "avg", "aggregation algorithm: avg | median | trimmed:<k>")
	initiator := flag.Bool("initiator", false, "act as the round-sync initiator")
	peers := flag.String("peers", "", "comma-separated follower list id=addr (initiator only)")
	dialTimeout := flag.Duration("dial-timeout", 30*time.Second, "total budget for dialing the AP and each follower (with backoff)")
	peerTimeout := flag.Duration("peer-timeout", 2*time.Minute, "deadline for synchronizing one follower's round fusion")
	flag.Parse()

	log.SetPrefix(fmt.Sprintf("deta-aggregator[%s]: ", *id))
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	alg, err := parseAlgorithm(*algorithm)
	if err != nil {
		log.Fatal(err)
	}
	mat, err := transport.LoadTLSMaterials(*tlsDir)
	if err != nil {
		log.Fatalf("loading TLS materials: %v", err)
	}
	dialCtx, cancelDial := context.WithTimeout(context.Background(), *dialTimeout)
	apConn, err := mat.DialTLSBackoff(dialCtx, *apAddr, *tlsName, transport.Backoff{Attempts: transport.UnlimitedAttempts})
	if err != nil {
		cancelDial()
		log.Fatalf("dialing AP: %v", err)
	}
	ap := &core.APClient{C: apConn}

	// Manufacture this host's platform: generate a VCEK locally, have the
	// vendor role endorse it.
	vcekKey, vcekPub, err := sev.GenerateVCEK()
	if err != nil {
		log.Fatalf("generating VCEK: %v", err)
	}
	chain, err := ap.Endorse("host/"+*id, vcekPub)
	if err != nil {
		log.Fatalf("endorsement: %v", err)
	}
	platform, err := sev.NewEndorsedPlatform("host/"+*id, chain, vcekKey)
	if err != nil {
		log.Fatal(err)
	}

	// Phase I: launch the CVM paused, attest against the AP, receive the
	// token into encrypted memory, resume.
	cvm, err := platform.LaunchCVM(core.OVMF)
	if err != nil {
		log.Fatalf("launching CVM: %v", err)
	}
	if err := ap.AttestCVM(*id, platform, cvm); err != nil {
		log.Fatalf("attestation failed (refusing to serve): %v", err)
	}
	log.Printf("CVM attested and provisioned; state=%s", cvm.State())

	node, err := core.NewAggregatorNode(*id, alg, cvm)
	if err != nil {
		log.Fatalf("starting aggregation service: %v", err)
	}
	srv := transport.NewServer()
	core.ServeAggregator(node, srv)

	if *initiator {
		followers, err := dialPeers(dialCtx, mat, *peers, *tlsName)
		if err != nil {
			log.Fatalf("dialing followers: %v", err)
		}
		startInitiatorSync(node, followers, *peerTimeout)
		log.Printf("acting as initiator with %d followers", len(followers))
	}
	cancelDial()

	ln, err := mat.ListenTLS(*listen)
	if err != nil {
		log.Fatalf("listening on %s: %v", *listen, err)
	}
	log.Printf("serving %s aggregation on %s", alg.Name(), ln.Addr())
	if err := srv.Serve(ln); err != nil {
		log.Fatalf("serve: %v", err)
	}
}

func parseAlgorithm(name string) (agg.Algorithm, error) {
	switch {
	case name == "avg":
		return agg.IterativeAverage{}, nil
	case name == "median":
		return agg.CoordinateMedian{}, nil
	case strings.HasPrefix(name, "trimmed:"):
		var k int
		if _, err := fmt.Sscanf(name, "trimmed:%d", &k); err != nil {
			return nil, fmt.Errorf("bad trimmed spec %q", name)
		}
		return agg.TrimmedMean{Trim: k}, nil
	}
	return nil, fmt.Errorf("unknown algorithm %q (want avg | median | trimmed:<k>)", name)
}

func dialPeers(ctx context.Context, mat *transport.TLSMaterials, spec, tlsName string) (map[string]*core.AggregatorClient, error) {
	out := make(map[string]*core.AggregatorClient)
	if spec == "" {
		return out, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok {
			return nil, fmt.Errorf("bad peer entry %q (want id=addr)", entry)
		}
		c, err := mat.DialTLSBackoff(ctx, addr, tlsName, transport.Backoff{Attempts: transport.UnlimitedAttempts})
		if err != nil {
			return nil, fmt.Errorf("dialing follower %s at %s: %w", id, addr, err)
		}
		out[id] = &core.AggregatorClient{ID: id, C: c}
	}
	return out, nil
}

// startInitiatorSync polls round completeness and, once the local node has
// all uploads for a round, fuses locally and instructs all followers to
// fuse concurrently — the sync cost is the slowest follower, not the sum.
func startInitiatorSync(node *core.AggregatorNode, followers map[string]*core.AggregatorClient, peerTimeout time.Duration) {
	go func() {
		synced := make(map[int]bool)
		round := 1
		for {
			if !synced[round] && node.Complete(round) {
				if err := node.Aggregate(round); err != nil {
					log.Printf("round %d: local aggregate: %v", round, err)
				}
				var g core.Group
				for id, f := range followers {
					id, f, round := id, f, round
					g.Go(func() error {
						ctx, cancel := context.WithTimeout(context.Background(), peerTimeout)
						defer cancel()
						if err := syncFollower(ctx, f, round); err != nil {
							return fmt.Errorf("follower %s: %w", id, err)
						}
						return nil
					})
				}
				if err := g.Wait(); err != nil {
					log.Printf("round %d: %v", round, err)
				}
				log.Printf("round %d fused across %d aggregators", round, len(followers)+1)
				synced[round] = true
				round++
				continue
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()
}

// syncFollower waits for the follower to have all uploads, then triggers
// its fusion; ctx bounds the whole exchange.
func syncFollower(ctx context.Context, f *core.AggregatorClient, round int) error {
	for {
		done, err := f.Complete(ctx, round)
		if err != nil {
			return err
		}
		if done {
			return f.Aggregate(ctx, round)
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("waiting for follower uploads: %w", ctx.Err())
		case <-time.After(20 * time.Millisecond):
		}
	}
}
