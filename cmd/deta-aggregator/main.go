// Command deta-aggregator runs one DeTA aggregator: it launches a
// simulated SEV CVM on its host platform, attests it against the remote
// attestation proxy (Phase I, receiving its authentication token into
// encrypted memory), and then serves the aggregation protocol to parties
// over TLS. One aggregator is designated the initiator; it synchronizes
// fusion across its follower peers once all parties have uploaded
// (paper §4.1, "Inter-Aggregator Training Synchronization").
//
//	deta-aggregator -id agg-1 -listen 127.0.0.1:7101 -ap 127.0.0.1:7000 \
//	    -initiator -peers agg-2=127.0.0.1:7102,agg-3=127.0.0.1:7103
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"deta/internal/agg"
	"deta/internal/core"
	"deta/internal/sev"
	"deta/internal/transport"
)

func main() {
	id := flag.String("id", "agg-1", "aggregator identifier")
	listen := flag.String("listen", "127.0.0.1:7101", "address to serve parties on")
	apAddr := flag.String("ap", "127.0.0.1:7000", "attestation proxy address")
	tlsDir := flag.String("tls-dir", "./deta-tls", "TLS materials directory (shared with the AP)")
	tlsName := flag.String("tls-name", "127.0.0.1", "server name expected in the AP/peer certificates")
	algorithm := flag.String("algorithm", "avg", "aggregation algorithm: avg | median | trimmed:<k>")
	initiator := flag.Bool("initiator", false, "act as the round-sync initiator")
	peers := flag.String("peers", "", "comma-separated follower list id=addr (initiator only)")
	flag.Parse()

	log.SetPrefix(fmt.Sprintf("deta-aggregator[%s]: ", *id))
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	alg, err := parseAlgorithm(*algorithm)
	if err != nil {
		log.Fatal(err)
	}
	mat, err := transport.LoadTLSMaterials(*tlsDir)
	if err != nil {
		log.Fatalf("loading TLS materials: %v", err)
	}
	apConn, err := mat.DialTLS(*apAddr, *tlsName)
	if err != nil {
		log.Fatalf("dialing AP: %v", err)
	}
	ap := &core.APClient{C: apConn}

	// Manufacture this host's platform: generate a VCEK locally, have the
	// vendor role endorse it.
	vcekKey, vcekPub, err := sev.GenerateVCEK()
	if err != nil {
		log.Fatalf("generating VCEK: %v", err)
	}
	chain, err := ap.Endorse("host/"+*id, vcekPub)
	if err != nil {
		log.Fatalf("endorsement: %v", err)
	}
	platform, err := sev.NewEndorsedPlatform("host/"+*id, chain, vcekKey)
	if err != nil {
		log.Fatal(err)
	}

	// Phase I: launch the CVM paused, attest against the AP, receive the
	// token into encrypted memory, resume.
	cvm, err := platform.LaunchCVM(core.OVMF)
	if err != nil {
		log.Fatalf("launching CVM: %v", err)
	}
	if err := ap.AttestCVM(*id, platform, cvm); err != nil {
		log.Fatalf("attestation failed (refusing to serve): %v", err)
	}
	log.Printf("CVM attested and provisioned; state=%s", cvm.State())

	node, err := core.NewAggregatorNode(*id, alg, cvm)
	if err != nil {
		log.Fatalf("starting aggregation service: %v", err)
	}
	srv := transport.NewServer()
	core.ServeAggregator(node, srv)

	if *initiator {
		followers, err := dialPeers(mat, *peers, *tlsName)
		if err != nil {
			log.Fatalf("dialing followers: %v", err)
		}
		startInitiatorSync(node, followers)
		log.Printf("acting as initiator with %d followers", len(followers))
	}

	ln, err := mat.ListenTLS(*listen)
	if err != nil {
		log.Fatalf("listening on %s: %v", *listen, err)
	}
	log.Printf("serving %s aggregation on %s", alg.Name(), ln.Addr())
	if err := srv.Serve(ln); err != nil {
		log.Fatalf("serve: %v", err)
	}
}

func parseAlgorithm(name string) (agg.Algorithm, error) {
	switch {
	case name == "avg":
		return agg.IterativeAverage{}, nil
	case name == "median":
		return agg.CoordinateMedian{}, nil
	case strings.HasPrefix(name, "trimmed:"):
		var k int
		if _, err := fmt.Sscanf(name, "trimmed:%d", &k); err != nil {
			return nil, fmt.Errorf("bad trimmed spec %q", name)
		}
		return agg.TrimmedMean{Trim: k}, nil
	}
	return nil, fmt.Errorf("unknown algorithm %q (want avg | median | trimmed:<k>)", name)
}

func dialPeers(mat *transport.TLSMaterials, spec, tlsName string) (map[string]*core.AggregatorClient, error) {
	out := make(map[string]*core.AggregatorClient)
	if spec == "" {
		return out, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok {
			return nil, fmt.Errorf("bad peer entry %q (want id=addr)", entry)
		}
		c, err := mat.DialTLS(addr, tlsName)
		if err != nil {
			return nil, fmt.Errorf("dialing follower %s at %s: %w", id, addr, err)
		}
		out[id] = &core.AggregatorClient{ID: id, C: c}
	}
	return out, nil
}

// startInitiatorSync polls round completeness and, once the local node has
// all uploads for a round, fuses locally and instructs followers to fuse.
func startInitiatorSync(node *core.AggregatorNode, followers map[string]*core.AggregatorClient) {
	go func() {
		synced := make(map[int]bool)
		round := 1
		for {
			if !synced[round] && node.Complete(round) {
				if err := node.Aggregate(round); err != nil {
					log.Printf("round %d: local aggregate: %v", round, err)
				}
				for id, f := range followers {
					if err := syncFollower(f, round); err != nil {
						log.Printf("round %d: follower %s: %v", round, id, err)
					}
				}
				log.Printf("round %d fused across %d aggregators", round, len(followers)+1)
				synced[round] = true
				round++
				continue
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()
}

// syncFollower waits for the follower to have all uploads, then triggers
// its fusion.
func syncFollower(f *core.AggregatorClient, round int) error {
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		done, err := f.Complete(round)
		if err != nil {
			return err
		}
		if done {
			return f.Aggregate(round)
		}
		time.Sleep(20 * time.Millisecond)
	}
	return fmt.Errorf("timeout waiting for follower uploads")
}
