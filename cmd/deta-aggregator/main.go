// Command deta-aggregator runs one DeTA aggregator: it launches a
// simulated SEV CVM on its host platform, attests it against the remote
// attestation proxy (Phase I, receiving its authentication token into
// encrypted memory), and then serves the aggregation protocol to parties
// over TLS. One aggregator is designated the initiator; it synchronizes
// fusion across its follower peers once all parties have uploaded
// (paper §4.1, "Inter-Aggregator Training Synchronization").
//
//	deta-aggregator -id agg-1 -listen 127.0.0.1:7101 -ap 127.0.0.1:7000 \
//	    -initiator -peers agg-2=127.0.0.1:7102,agg-3=127.0.0.1:7103
package main

import (
	"context"
	"crypto/tls"
	"flag"
	"fmt"
	"log"
	"net"
	"strings"
	"sync/atomic"
	"time"

	"deta/internal/agg"
	"deta/internal/core"
	"deta/internal/journal"
	"deta/internal/sev"
	"deta/internal/transport"
)

// clk is the process clock. Sleeps, retries, and the liveness ticker all
// go through this seam (core.SystemClock in production) so tests can
// substitute core.FakeClock and step the sync loops deterministically.
var clk core.Clock = core.SystemClock

func main() {
	id := flag.String("id", "agg-1", "aggregator identifier")
	listen := flag.String("listen", "127.0.0.1:7101", "address to serve parties on")
	apAddr := flag.String("ap", "127.0.0.1:7000", "attestation proxy address")
	tlsDir := flag.String("tls-dir", "./deta-tls", "TLS materials directory (shared with the AP)")
	tlsName := flag.String("tls-name", "127.0.0.1", "server name expected in the AP/peer certificates")
	algorithm := flag.String("algorithm", "avg", "aggregation algorithm: avg | median | trimmed:<k>")
	initiator := flag.Bool("initiator", false, "act as the round-sync initiator")
	peers := flag.String("peers", "", "comma-separated follower list id=addr (initiator only)")
	dialTimeout := flag.Duration("dial-timeout", 30*time.Second, "total budget for dialing the AP and each follower (with backoff)")
	peerTimeout := flag.Duration("peer-timeout", 2*time.Minute, "deadline for synchronizing one follower's round fusion")
	stateDir := flag.String("state-dir", "", "directory for the durable round journal; a restarted aggregator recovers its rounds from it (empty = in-memory only)")
	retain := flag.Int("retain", 0, "evict aggregated rounds older than N from memory (0 = keep all; the journal stays the durable copy)")
	noFsync := flag.Bool("journal-no-fsync", false, "skip the per-record journal fsync (survives process crashes only; benchmarking)")
	wire := flag.String("wire", "binary", "fragment wire codec for responses: binary (fixed-layout) or gob (legacy rollback); requests are sniffed, both always accepted")
	roundDeadline := flag.Duration("round-deadline", 0, "abandon a round still below quorum after this long, and cut stragglers at it (0 = wait forever, the legacy behavior)")
	grace := flag.Duration("grace", 2*time.Second, "post-quorum straggler window: a round with quorum seals after min(-grace, remaining -round-deadline); needs -round-deadline")
	heartbeat := flag.Duration("heartbeat", 0, "expected party heartbeat interval; parties silent for 3x are suspect, for 8x are evicted from membership (journaled; they rejoin on their next signal). 0 = liveness off")
	flag.Parse()

	log.SetPrefix(fmt.Sprintf("deta-aggregator[%s]: ", *id))
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	switch *wire {
	case "binary":
		transport.SetBinaryWire(true)
	case "gob":
		transport.SetBinaryWire(false)
	default:
		log.Fatalf("unknown -wire %q (want binary or gob)", *wire)
	}

	alg, err := parseAlgorithm(*algorithm)
	if err != nil {
		log.Fatal(err)
	}
	mat, err := transport.LoadTLSMaterials(*tlsDir)
	if err != nil {
		log.Fatalf("loading TLS materials: %v", err)
	}
	dialCtx, cancelDial := context.WithTimeout(context.Background(), *dialTimeout)
	apConn, err := mat.DialTLSBackoff(dialCtx, *apAddr, *tlsName, transport.Backoff{Attempts: transport.UnlimitedAttempts})
	if err != nil {
		cancelDial()
		log.Fatalf("dialing AP: %v", err)
	}
	ap := &core.APClient{C: apConn}

	// Manufacture this host's platform: generate a VCEK locally, have the
	// vendor role endorse it.
	vcekKey, vcekPub, err := sev.GenerateVCEK()
	if err != nil {
		log.Fatalf("generating VCEK: %v", err)
	}
	chain, err := ap.Endorse(dialCtx, "host/"+*id, vcekPub)
	if err != nil {
		log.Fatalf("endorsement: %v", err)
	}
	platform, err := sev.NewEndorsedPlatform("host/"+*id, chain, vcekKey)
	if err != nil {
		log.Fatal(err)
	}

	// Phase I: launch the CVM paused, attest against the AP, receive the
	// token into encrypted memory, resume.
	cvm, err := platform.LaunchCVM(core.OVMF)
	if err != nil {
		log.Fatalf("launching CVM: %v", err)
	}
	if err := ap.AttestCVM(dialCtx, *id, platform, cvm); err != nil {
		log.Fatalf("attestation failed (refusing to serve): %v", err)
	}
	log.Printf("CVM attested and provisioned; state=%s", cvm.State())

	var node *core.AggregatorNode
	if *stateDir != "" {
		var info *core.RecoveryInfo
		node, info, err = core.RecoverAggregatorNode(*id, alg, cvm,
			core.StateDirFor(*stateDir, *id), journal.Options{NoSync: *noFsync})
		if err != nil {
			log.Fatalf("starting aggregation service: %v", err)
		}
		log.Printf("journal recovered: %d parties, %d rounds in memory (%d aggregated, last %d), %d fetches served, torn tail=%v",
			info.Parties, info.Rounds, info.Aggregated, info.LastAggregated, info.FetchesServed, info.TornTail)
	} else {
		node, err = core.NewAggregatorNode(*id, alg, cvm)
		if err != nil {
			log.Fatalf("starting aggregation service: %v", err)
		}
	}
	if *retain > 0 {
		node.SetRetention(*retain)
	}
	if *roundDeadline > 0 {
		node.SetLifecycle(*roundDeadline, *grace)
		log.Printf("round lifecycle armed: deadline %v, grace %v", *roundDeadline, *grace)
	}
	if *heartbeat > 0 {
		// Recovered rounds and parties get a fresh liveness epoch here
		// (the WAL carries no timestamps), so a restarted aggregator gives
		// everyone a full window before suspecting anyone.
		node.SetLiveness(3**heartbeat, 8**heartbeat)
		// The process context gives the ticker an escape edge (goleak):
		// main never cancels it today, but the goroutine must not be
		// structurally unstoppable.
		go livenessTicker(context.Background(), node, *heartbeat)
		log.Printf("liveness armed: suspect after %v, evict after %v", 3**heartbeat, 8**heartbeat)
	}
	srv := transport.NewServer()
	core.ServeAggregator(node, srv)

	if *initiator {
		followers, err := dialPeers(dialCtx, mat, *peers, *tlsName)
		if err != nil {
			log.Fatalf("dialing followers: %v", err)
		}
		// Resume sync past rounds the recovered journal already fused —
		// evicted rounds would otherwise never report Complete and wedge
		// the initiator at round 1. As with the liveness ticker, the
		// process context exists to give the sync goroutines an escape
		// edge (goleak), not because main cancels them today.
		startInitiatorSync(context.Background(), node, followers, *peerTimeout, node.LastAggregatedRound()+1)
		log.Printf("acting as initiator with %d followers", len(followers))
	}
	cancelDial()

	ln, err := mat.ListenTLS(*listen)
	if err != nil {
		log.Fatalf("listening on %s: %v", *listen, err)
	}
	log.Printf("serving %s aggregation on %s", alg.Name(), ln.Addr())
	if err := srv.Serve(ln); err != nil {
		log.Fatalf("serve: %v", err)
	}
}

func parseAlgorithm(name string) (agg.Algorithm, error) {
	switch {
	case name == "avg":
		return agg.IterativeAverage{}, nil
	case name == "median":
		return agg.CoordinateMedian{}, nil
	case strings.HasPrefix(name, "trimmed:"):
		var k int
		if _, err := fmt.Sscanf(name, "trimmed:%d", &k); err != nil {
			return nil, fmt.Errorf("bad trimmed spec %q", name)
		}
		return agg.TrimmedMean{Trim: k}, nil
	}
	return nil, fmt.Errorf("unknown algorithm %q (want avg | median | trimmed:<k>)", name)
}

func dialPeers(ctx context.Context, mat *transport.TLSMaterials, spec, tlsName string) (map[string]*core.AggregatorClient, error) {
	out := make(map[string]*core.AggregatorClient)
	if spec == "" {
		return out, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok {
			return nil, fmt.Errorf("bad peer entry %q (want id=addr)", entry)
		}
		c, err := mat.DialTLSBackoff(ctx, addr, tlsName, transport.Backoff{Attempts: transport.UnlimitedAttempts})
		if err != nil {
			return nil, fmt.Errorf("dialing follower %s at %s: %w", id, addr, err)
		}
		// Redial lets the sync loop reach a follower that crashed and
		// restarted (it recovers its rounds from its journal and resumes).
		out[id] = &core.AggregatorClient{ID: id, C: c, Redial: func(ctx context.Context) (net.Conn, error) {
			d := &tls.Dialer{Config: mat.ClientConfig(tlsName)}
			return d.DialContext(ctx, "tcp", addr)
		}}
	}
	return out, nil
}

// livenessTicker drives the liveness reaper: uploads and heartbeats push
// lastSeen forward, and this timer notices the parties that stopped
// pushing. Evictions are journaled by the node before taking effect, so a
// crash right after one replays to the same membership.
func livenessTicker(ctx context.Context, node *core.AggregatorNode, interval time.Duration) {
	// Evictions can also be performed by the reap that runs on every
	// heartbeat receipt, between ticks; diff the evicted set rather than
	// relying on Tick's own return so every eviction gets a log line.
	// Re-armed clk.After instead of a ticker: liveness needs no catch-up
	// semantics, and the clock seam keeps the loop FakeClock-drivable.
	known := map[string]bool{}
	for {
		select {
		case <-ctx.Done():
			return
		case <-clk.After(interval):
		}
		node.Tick()
		cur := map[string]bool{}
		var fresh []string
		for _, p := range node.EvictedParties() {
			cur[p] = true
			if !known[p] {
				fresh = append(fresh, p)
			}
		}
		known = cur
		if len(fresh) > 0 {
			log.Printf("liveness: evicted silent parties %v (rejoin on next signal)", fresh)
		}
		if suspects := node.Suspects(); len(suspects) > 0 {
			log.Printf("liveness: suspect parties %v", suspects)
		}
	}
}

// startInitiatorSync polls round completeness and fuses the local node as
// soon as each round has all uploads; every follower then catches up on
// its own goroutine, so a slow or dead follower never stalls the healthy
// ones (parties degrade through their own -agg-quorum), while a follower
// that crashes and restarts is re-driven — not abandoned — until it has
// fused every round (fusion is idempotent on both sides, and the
// restarted follower recovers its uploads from its journal). startRound
// lets a journal-recovered initiator resume past rounds it already fused
// before the crash. ctx cancellation stops every goroutine started here.
func startInitiatorSync(ctx context.Context, node *core.AggregatorNode, followers map[string]*core.AggregatorClient, peerTimeout time.Duration, startRound int) {
	if startRound < 1 {
		startRound = 1
	}
	var latestFused atomic.Int64
	latestFused.Store(int64(startRound - 1))

	for id, f := range followers {
		id, f := id, f
		go func() {
			next := startRound
			var failures int
			for {
				if int64(next) > latestFused.Load() {
					if !pace(ctx, 20*time.Millisecond) {
						return
					}
					continue
				}
				callCtx, cancel := context.WithTimeout(ctx, peerTimeout)
				err := syncFollower(callCtx, f, next)
				cancel()
				if err != nil {
					if failures++; failures == 1 || failures%50 == 0 {
						log.Printf("round %d: follower %s: %v (retrying)", next, id, err)
					}
					if !pace(ctx, 200*time.Millisecond) {
						return
					}
					continue
				}
				failures = 0
				next++
			}
		}()
	}

	go func() {
		round := startRound
		for {
			complete, abandoned := node.RoundStatus(round)
			switch {
			case abandoned:
				// Deadline passed below quorum: give up on this round and
				// let followers (whose own lifecycle reached the same
				// verdict) and parties (typed ErrRoundAbandoned) skip it.
				latestFused.Store(int64(round))
				log.Printf("round %d abandoned below quorum; skipping", round)
				round++
				continue
			case complete:
				if err := node.Aggregate(round); err != nil {
					log.Printf("round %d: local aggregate: %v", round, err)
					if !pace(ctx, 20*time.Millisecond) {
						return
					}
					continue
				}
				latestFused.Store(int64(round))
				log.Printf("round %d fused locally; followers syncing", round)
				round++
				continue
			}
			if !pace(ctx, 20*time.Millisecond) {
				return
			}
		}
	}()
}

// pace sleeps one polling interval through the clock seam, returning
// false when ctx ends first — the caller's loop must exit then, which is
// also what makes the sync goroutines structurally stoppable.
func pace(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-clk.After(d):
		return true
	}
}

// syncFollower waits for the follower to have all uploads, then triggers
// its fusion; ctx bounds the whole exchange. A round the follower's own
// lifecycle abandoned is skipped, not re-driven.
func syncFollower(ctx context.Context, f *core.AggregatorClient, round int) error {
	for {
		done, abandoned, err := f.CompleteStatus(ctx, round)
		if err != nil {
			return err
		}
		if abandoned {
			return nil
		}
		if done {
			return f.Aggregate(ctx, round)
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("waiting for follower uploads: %w", ctx.Err())
		case <-clk.After(20 * time.Millisecond):
		}
	}
}
