// Command deta-bench regenerates the paper's tables and figures
// (DESIGN.md §4 maps each experiment ID to the artifact it reproduces)
// and maintains the repo's machine-readable performance baselines
// (BENCH_<area>.json, see EXPERIMENTS.md "Tracked baselines").
//
//	deta-bench -exp fig5a                 # one experiment at default scale
//	deta-bench -exp all -scale fast       # everything, minutes of runtime
//	deta-bench -exp table1 -attack-images 100 -attack-iters 300
//	deta-bench -exp churn                 # round-lifecycle churn sweep (abandoned vs degraded)
//
//	deta-bench -perf                      # rerun the perf suite, compare to BENCH_*.json
//	deta-bench -perf -perf-baseline-write # refresh the checked-in baselines
//	deta-bench -perf -perf-area agg,core  # only some areas
//
// Exit codes: 0 success, 1 experiment failure, 2 usage error,
// 3 watchdog timeout (-timeout expired; partial results are flushed),
// 4 perf regression against the baselines.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"deta/internal/core"
	"deta/internal/experiments"
	"deta/internal/perf"
)

// osExit is swappable so tests can observe the watchdog exit path.
var osExit = os.Exit

// clk is the process clock behind the watchdog timer (core.SystemClock in
// production); injectable alongside osExit so tests can fire the watchdog
// without real waiting.
var clk core.Clock = core.SystemClock

// lockedWriter serializes writes so the watchdog can flush partial
// results from its own goroutine without racing the experiment writer.
type lockedWriter struct {
	mu sync.Mutex
	w  *bufio.Writer
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

func (l *lockedWriter) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Flush()
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of deta-bench: it parses args on its own
// FlagSet, writes results to stdout, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := newBenchFlags()
	fs.fs.SetOutput(stderr)
	if err := fs.fs.Parse(args); err != nil {
		return 2
	}

	log.SetPrefix("deta-bench: ")
	log.SetFlags(log.Ltime)

	out := &lockedWriter{w: bufio.NewWriter(stdout)}
	defer func() { _ = out.Flush() }()

	if *fs.timeout > 0 {
		// Watchdog: a wedged experiment (e.g. an RPC harness waiting on a
		// dead endpoint) kills the run instead of hanging CI forever —
		// flushing whatever partial results were produced and exiting
		// with a distinct code so callers can tell timeout from failure.
		startWatchdog(*fs.timeout, out, stderr)
	}

	if *fs.perfRun {
		return runPerf(fs, out, stderr)
	}
	return runExperiments(fs, out, stderr)
}

// startWatchdog arms the -timeout watchdog. Exposed as a function so the
// flush-then-exit path is testable in-process; the wait goes through clk
// so the timer respects the clock seam (nobody ever stopped the returned
// *time.Timer, so a plain goroutine is equivalent and simpler).
func startWatchdog(d time.Duration, out *lockedWriter, stderr io.Writer) {
	go func() {
		<-clk.After(d)
		_ = out.Flush()
		fmt.Fprintf(stderr, "deta-bench: watchdog: run exceeded -timeout=%v; partial results flushed\n", d)
		osExit(3)
	}()
}

// benchFlags bundles the parsed flag set.
type benchFlags struct {
	fs *flag.FlagSet

	exp       *string
	scaleName *string
	format    *string

	samples      *int
	rounds       *int
	attackImages *int
	attackIters  *int
	igImages     *int
	igIters      *int
	paillierBits *int
	aggregators  *int
	timeout      *time.Duration

	perfRun       *bool
	perfArea      *string
	perfBaseline  *string
	perfWrite     *bool
	perfRuns      *int
	perfBenchtime *time.Duration
	perfFreshDir  *string
	perfMaxNsPct  *float64
	perfMaxAllocs *int64
}

func newBenchFlags() *benchFlags {
	fs := flag.NewFlagSet("deta-bench", flag.ContinueOnError)
	b := &benchFlags{fs: fs}
	b.exp = fs.String("exp", "all", "experiment ID or 'all'; one of: "+strings.Join(experiments.IDs(), ", "))
	b.scaleName = fs.String("scale", "default", "preset scale: fast | default")
	b.format = fs.String("format", "text", "output format: text | csv")

	// Per-knob overrides (zero means keep the preset value).
	b.samples = fs.Int("samples", 0, "samples per party")
	b.rounds = fs.Int("rounds", 0, "override every workload's round count")
	b.attackImages = fs.Int("attack-images", 0, "images per attack scenario (tables 1-2)")
	b.attackIters = fs.Int("attack-iters", 0, "DLG/iDLG iterations")
	b.igImages = fs.Int("ig-images", 0, "images for the IG grid (table 3)")
	b.igIters = fs.Int("ig-iters", 0, "IG iterations")
	b.paillierBits = fs.Int("paillier-bits", 0, "Paillier modulus size")
	b.aggregators = fs.Int("aggregators", 0, "number of DeTA aggregators")
	b.timeout = fs.Duration("timeout", 0, "abort the whole run after this long (0 = no watchdog); exit code 3")

	// Perf-baseline workflow (mirrors deta-lint -baseline/-baseline-write).
	b.perfRun = fs.Bool("perf", false, "run the tracked perf suite instead of experiments")
	b.perfArea = fs.String("perf-area", "", "comma-separated perf areas (default: all of "+strings.Join(perf.Areas(), ", ")+")")
	b.perfBaseline = fs.String("perf-baseline", ".", "directory holding the BENCH_<area>.json baselines")
	b.perfWrite = fs.Bool("perf-baseline-write", false, "write fresh BENCH_<area>.json baselines instead of comparing")
	b.perfRuns = fs.Int("perf-runs", 3, "best-of-N runs per bench")
	b.perfBenchtime = fs.Duration("perf-benchtime", 100*time.Millisecond, "target benchtime per run")
	b.perfFreshDir = fs.String("perf-fresh-dir", "", "also write the fresh results as BENCH_<area>.json into this directory (e.g. for CI artifacts)")
	b.perfMaxNsPct = fs.Float64("perf-max-ns-pct", 0, "override the allowed ns/op growth in percent (0 = default gate)")
	b.perfMaxAllocs = fs.Int64("perf-max-allocs", 0, "override the allowed allocs/op growth (0 = default gate; allocs jitter at very short benchtimes)")
	return b
}

// runPerf executes the perf suite and either records baselines or gates
// against them.
func runPerf(b *benchFlags, out *lockedWriter, stderr io.Writer) int {
	areas := perf.Areas()
	if *b.perfArea != "" {
		areas = nil
		for _, a := range strings.Split(*b.perfArea, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				continue
			}
			if _, err := perf.SuiteBenches(a); err != nil {
				fmt.Fprintf(stderr, "deta-bench: %v\n", err)
				return 2
			}
			areas = append(areas, a)
		}
		if len(areas) == 0 {
			fmt.Fprintln(stderr, "deta-bench: -perf-area selected no areas")
			return 2
		}
	}

	th := perf.DefaultThresholds()
	if *b.perfMaxNsPct > 0 {
		th.MaxNsPct = *b.perfMaxNsPct
	}
	if *b.perfMaxAllocs > 0 {
		th.MaxAllocsDelta = *b.perfMaxAllocs
	}

	logf := func(format string, args ...any) {
		fmt.Fprintf(out, format+"\n", args...)
	}
	regressions := 0
	for _, area := range areas {
		fresh, err := perf.RunArea(area, *b.perfRuns, *b.perfBenchtime, logf)
		if err != nil {
			fmt.Fprintf(stderr, "deta-bench: %v\n", err)
			return 1
		}
		if *b.perfFreshDir != "" {
			if err := writeBaseline(*b.perfFreshDir, fresh); err != nil {
				fmt.Fprintf(stderr, "deta-bench: %v\n", err)
				return 1
			}
		}
		if *b.perfWrite {
			if err := writeBaseline(*b.perfBaseline, fresh); err != nil {
				fmt.Fprintf(stderr, "deta-bench: %v\n", err)
				return 1
			}
			fmt.Fprintf(stderr, "deta-bench: wrote %d bench(es) to %s\n",
				len(fresh.Results), filepath.Join(*b.perfBaseline, perf.BaselineName(area)))
			continue
		}
		basePath := filepath.Join(*b.perfBaseline, perf.BaselineName(area))
		base, err := perf.ReadFile(basePath)
		if err != nil {
			fmt.Fprintf(stderr, "deta-bench: %v (run -perf -perf-baseline-write to create baselines)\n", err)
			return 2
		}
		deltas := perf.Compare(base.Results, fresh.Results, th)
		perf.RenderDeltas(out, area, deltas)
		regressions += perf.Regressions(deltas)
	}
	if regressions > 0 {
		_ = out.Flush()
		fmt.Fprintf(stderr, "deta-bench: %d perf regression(s) vs baselines; investigate or refresh with -perf-baseline-write\n", regressions)
		return 4
	}
	return 0
}

func writeBaseline(dir string, f *perf.File) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return perf.WriteFile(filepath.Join(dir, perf.BaselineName(f.Area)), f)
}

// runExperiments is the original table/figure front door.
func runExperiments(b *benchFlags, out *lockedWriter, stderr io.Writer) int {
	var sc experiments.Scale
	switch *b.scaleName {
	case "fast":
		sc = experiments.FastScale()
	case "default":
		sc = experiments.DefaultScale()
	default:
		fmt.Fprintf(stderr, "deta-bench: unknown scale %q (want fast | default)\n", *b.scaleName)
		return 2
	}
	if *b.samples > 0 {
		sc.SamplesPerParty = *b.samples
	}
	if *b.rounds > 0 {
		sc.MNISTRounds = *b.rounds
		sc.CIFARRounds = *b.rounds
		sc.RVLRounds = *b.rounds
		sc.PaillierRounds = *b.rounds
	}
	if *b.attackImages > 0 {
		sc.AttackImages = *b.attackImages
	}
	if *b.attackIters > 0 {
		sc.AttackIters = *b.attackIters
	}
	if *b.igImages > 0 {
		sc.IGImages = *b.igImages
	}
	if *b.igIters > 0 {
		sc.IGIters = *b.igIters
	}
	if *b.paillierBits > 0 {
		sc.PaillierBits = *b.paillierBits
	}
	if *b.aggregators > 0 {
		sc.Aggregators = *b.aggregators
	}

	var fm experiments.Format
	switch *b.format {
	case "text":
		fm = experiments.FormatText
	case "csv":
		fm = experiments.FormatCSV
	default:
		fmt.Fprintf(stderr, "deta-bench: unknown format %q (want text | csv)\n", *b.format)
		return 2
	}

	var err error
	if *b.exp == "all" {
		if fm != experiments.FormatText {
			for _, id := range experiments.IDs() {
				fmt.Fprintf(out, "### experiment %s\n", id)
				if err = experiments.RunFormatted(id, sc, fm, out); err != nil {
					break
				}
			}
		} else {
			err = experiments.RunAll(sc, out)
		}
	} else {
		if _, ok := experiments.Registry[*b.exp]; !ok {
			fmt.Fprintf(stderr, "deta-bench: unknown experiment %q (want all, %s)\n",
				*b.exp, strings.Join(experiments.IDs(), ", "))
			return 2
		}
		err = experiments.RunFormatted(*b.exp, sc, fm, out)
	}
	if err != nil {
		fmt.Fprintf(stderr, "deta-bench: %v\n", err)
		return 1
	}
	return 0
}
