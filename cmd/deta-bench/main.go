// Command deta-bench regenerates the paper's tables and figures
// (DESIGN.md §4 maps each experiment ID to the artifact it reproduces).
//
//	deta-bench -exp fig5a                 # one experiment at default scale
//	deta-bench -exp all -scale fast       # everything, minutes of runtime
//	deta-bench -exp table1 -attack-images 100 -attack-iters 300
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"deta/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment ID or 'all'; one of: "+strings.Join(experiments.IDs(), ", "))
	scaleName := flag.String("scale", "default", "preset scale: fast | default")
	format := flag.String("format", "text", "output format: text | csv")

	// Per-knob overrides (zero means keep the preset value).
	samples := flag.Int("samples", 0, "samples per party")
	rounds := flag.Int("rounds", 0, "override every workload's round count")
	attackImages := flag.Int("attack-images", 0, "images per attack scenario (tables 1-2)")
	attackIters := flag.Int("attack-iters", 0, "DLG/iDLG iterations")
	igImages := flag.Int("ig-images", 0, "images for the IG grid (table 3)")
	igIters := flag.Int("ig-iters", 0, "IG iterations")
	paillierBits := flag.Int("paillier-bits", 0, "Paillier modulus size")
	aggregators := flag.Int("aggregators", 0, "number of DeTA aggregators")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this long (0 = no watchdog)")
	flag.Parse()

	log.SetPrefix("deta-bench: ")
	log.SetFlags(log.Ltime)

	if *timeout > 0 {
		// Watchdog: a wedged experiment (e.g. an RPC harness waiting on a
		// dead endpoint) kills the run instead of hanging CI forever.
		time.AfterFunc(*timeout, func() {
			log.Fatalf("watchdog: run exceeded -timeout=%v", *timeout)
		})
	}

	var sc experiments.Scale
	switch *scaleName {
	case "fast":
		sc = experiments.FastScale()
	case "default":
		sc = experiments.DefaultScale()
	default:
		log.Fatalf("unknown scale %q (want fast | default)", *scaleName)
	}
	if *samples > 0 {
		sc.SamplesPerParty = *samples
	}
	if *rounds > 0 {
		sc.MNISTRounds = *rounds
		sc.CIFARRounds = *rounds
		sc.RVLRounds = *rounds
		sc.PaillierRounds = *rounds
	}
	if *attackImages > 0 {
		sc.AttackImages = *attackImages
	}
	if *attackIters > 0 {
		sc.AttackIters = *attackIters
	}
	if *igImages > 0 {
		sc.IGImages = *igImages
	}
	if *igIters > 0 {
		sc.IGIters = *igIters
	}
	if *paillierBits > 0 {
		sc.PaillierBits = *paillierBits
	}
	if *aggregators > 0 {
		sc.Aggregators = *aggregators
	}

	var fm experiments.Format
	switch *format {
	case "text":
		fm = experiments.FormatText
	case "csv":
		fm = experiments.FormatCSV
	default:
		log.Fatalf("unknown format %q (want text | csv)", *format)
	}

	var err error
	if *exp == "all" {
		if fm != experiments.FormatText {
			for _, id := range experiments.IDs() {
				fmt.Printf("### experiment %s\n", id)
				if err = experiments.RunFormatted(id, sc, fm, os.Stdout); err != nil {
					break
				}
			}
		} else {
			err = experiments.RunAll(sc, os.Stdout)
		}
	} else {
		err = experiments.RunFormatted(*exp, sc, fm, os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "deta-bench: %v\n", err)
		os.Exit(1)
	}
}
