package main

import (
	"bufio"
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"deta/internal/perf"
)

// TestMain doubles as the re-exec helper: with DETA_BENCH_MAIN=1 the test
// binary behaves like the real deta-bench, so tests can observe true exit
// codes (the watchdog path must os.Exit).
func TestMain(m *testing.M) {
	if os.Getenv("DETA_BENCH_MAIN") == "1" {
		os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// reexec runs the test binary as deta-bench with the given args.
func reexec(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "DETA_BENCH_MAIN=1")
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err = cmd.Run()
	code = 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatal(err)
	}
	return out.String(), errb.String(), code
}

// TestWatchdogExitCode: a run that exceeds -timeout must exit 3 (not the
// generic failure code), with the watchdog named on stderr.
func TestWatchdogExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the binary")
	}
	_, stderr, code := reexec(t, "-exp", "all", "-scale", "fast", "-timeout", "1ms")
	if code != 3 {
		t.Fatalf("exit code %d, want 3 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, "watchdog") {
		t.Errorf("stderr missing watchdog notice: %s", stderr)
	}
}

// TestWatchdogFlushesPartialOutput pins the flush half of the watchdog
// contract in-process: buffered-but-unflushed results must reach the
// underlying writer before the exit.
func TestWatchdogFlushesPartialOutput(t *testing.T) {
	var sink bytes.Buffer
	out := &lockedWriter{w: bufio.NewWriter(&sink)}
	if _, err := out.Write([]byte("partial result line\n")); err != nil {
		t.Fatal(err)
	}
	if sink.Len() != 0 {
		t.Fatal("write was not buffered; flush test is vacuous")
	}

	exited := make(chan int, 1)
	old := osExit
	osExit = func(code int) {
		exited <- code
		runtime.Goexit() // end the watchdog goroutine like os.Exit would
	}
	defer func() { osExit = old }()

	var errb bytes.Buffer
	startWatchdog(5*time.Millisecond, out, &errb)
	select {
	case code := <-exited:
		if code != 3 {
			t.Errorf("watchdog exit code %d, want 3", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watchdog never fired")
	}
	if got := sink.String(); !strings.Contains(got, "partial result line") {
		t.Errorf("partial output not flushed before exit: %q", got)
	}
	if !strings.Contains(errb.String(), "watchdog") {
		t.Errorf("stderr missing watchdog notice: %q", errb.String())
	}
}

// TestRunExperimentInProcess: the ordinary experiment path still works
// through run() and returns 0.
func TestRunExperimentInProcess(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-exp", "ablation-keyspace", "-scale", "fast"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "KeyBits") {
		t.Errorf("output missing table header:\n%s", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-exp", "no-such-experiment"},
		{"-scale", "warp"},
		{"-format", "yaml"},
		{"-perf", "-perf-area", "nope"},
		{"-perf", "-perf-area", " , "},
	}
	for _, args := range cases {
		var out, errb bytes.Buffer
		if code := run(args, &out, &errb); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr: %s)", args, code, errb.String())
		}
	}
}

// TestPerfBaselineWorkflow drives the full -perf lifecycle in-process:
// baseline-write creates BENCH_agg.json, an unchanged rerun passes the
// gate, and a baseline tampered to look 10x faster (i.e. the fresh run is
// a ~900% slowdown) fails it with exit code 4.
func TestPerfBaselineWorkflow(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real benchmarks")
	}
	dir := t.TempDir()
	quick := []string{"-perf", "-perf-area", "agg", "-perf-runs", "1",
		"-perf-benchtime", "1ms", "-perf-baseline", dir}

	var out, errb bytes.Buffer
	if code := run(append(quick, "-perf-baseline-write"), &out, &errb); code != 0 {
		t.Fatalf("baseline-write exit %d, stderr: %s", code, errb.String())
	}
	path := filepath.Join(dir, perf.BaselineName("agg"))
	base, err := perf.ReadFile(path)
	if err != nil {
		t.Fatalf("baseline not written: %v", err)
	}
	if len(base.Results) == 0 || base.Area != "agg" {
		t.Fatalf("baseline malformed: %+v", base)
	}

	// Unchanged rerun passes. The generous ns and allocs gates keep this
	// robust to scheduler noise at a 1ms benchtime (one-iteration benches
	// jitter a few allocs/op run to run); the structural checks (missing
	// benches) still apply.
	out.Reset()
	errb.Reset()
	freshDir := filepath.Join(dir, "fresh")
	code := run(append(quick, "-perf-max-ns-pct", "5000", "-perf-max-allocs", "64", "-perf-fresh-dir", freshDir), &out, &errb)
	if code != 0 {
		t.Fatalf("unchanged rerun exit %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "area agg") {
		t.Errorf("delta table missing:\n%s", out.String())
	}
	if _, err := perf.ReadFile(filepath.Join(freshDir, perf.BaselineName("agg"))); err != nil {
		t.Errorf("-perf-fresh-dir results missing: %v", err)
	}

	// Inject a synthetic slowdown by shrinking the baseline 10x.
	for i := range base.Results {
		base.Results[i].NsPerOp /= 10
	}
	if err := perf.WriteFile(path, base); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	if code := run(quick, &out, &errb); code != 4 {
		t.Fatalf("slowdown exit %d, want 4\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "REGRESSED") || !strings.Contains(errb.String(), "regression") {
		t.Errorf("regression not reported\nstdout: %s\nstderr: %s", out.String(), errb.String())
	}

	// A missing baseline is a usage error pointing at -perf-baseline-write.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-perf", "-perf-area", "agg", "-perf-runs", "1", "-perf-benchtime", "1ms",
		"-perf-baseline", t.TempDir()}, &out, &errb); code != 2 {
		t.Errorf("missing baseline exit %d, want 2", code)
	}
}
