// Command deta-party runs one FL participant against a deployed DeTA
// fleet: it registers with the key broker, verifies every aggregator via
// the Phase II challenge-response, and then trains for the configured
// number of rounds, uploading partitioned+shuffled fragments and merging
// the aggregated results. All per-aggregator RPCs fan out concurrently
// through a core.Fleet with per-call deadlines; -agg-quorum lets rounds
// degrade (missing partitions fall back to the local update) instead of
// hanging when an aggregator dies mid-training.
//
//	deta-party -id P1 -index 0 -parties 4 -ap 127.0.0.1:7000 \
//	    -aggregators agg-1=127.0.0.1:7101,agg-2=127.0.0.1:7102,agg-3=127.0.0.1:7103
//
// All parties must share -parties, -rounds, -dataset, and -mapper-seed so
// they derive identical mappers and data splits.
package main

import (
	"context"
	"crypto/tls"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"sort"
	"strings"
	"time"

	"deta/internal/attest"
	"deta/internal/core"
	"deta/internal/dataset"
	"deta/internal/fl"
	"deta/internal/nn"
	"deta/internal/rng"
	"deta/internal/tensor"
	"deta/internal/transport"
)

// clk is the process clock. Everything that sleeps or waits goes through
// this seam (core.SystemClock in production) so tests can substitute
// core.FakeClock and drive retries and heartbeats deterministically.
var clk core.Clock = core.SystemClock

func main() {
	id := flag.String("id", "P1", "party identifier (must be unique)")
	index := flag.Int("index", 0, "this party's shard index in [0, parties)")
	parties := flag.Int("parties", 4, "total number of parties")
	apAddr := flag.String("ap", "127.0.0.1:7000", "attestation proxy / key broker address")
	aggSpec := flag.String("aggregators", "agg-1=127.0.0.1:7101", "comma-separated id=addr aggregator list")
	tlsDir := flag.String("tls-dir", "./deta-tls", "TLS materials directory (shared with the AP)")
	tlsName := flag.String("tls-name", "127.0.0.1", "expected TLS server name")
	rounds := flag.Int("rounds", 5, "training rounds")
	localEpochs := flag.Int("local-epochs", 1, "local epochs per round")
	samples := flag.Int("samples", 64, "training samples per party")
	batch := flag.Int("batch", 8, "batch size")
	lr := flag.Float64("lr", 0.05, "learning rate")
	dataSeed := flag.String("dataset-seed", "deta-cli-data", "shared dataset seed")
	mapperSeed := flag.String("mapper-seed", "deta-cli-mapper", "shared model-mapper seed")
	noShuffle := flag.Bool("no-shuffle", false, "disable parameter shuffling (partition only)")
	callTimeout := flag.Duration("call-timeout", 30*time.Second, "deadline for each aggregator RPC attempt (0 = none)")
	dialTimeout := flag.Duration("dial-timeout", 30*time.Second, "total budget for dialing the AP and each aggregator (with backoff)")
	roundTimeout := flag.Duration("round-timeout", 5*time.Minute, "deadline for one full round's download phase")
	aggQuorum := flag.Int("agg-quorum", 0, "minimum aggregators that must answer per round (0 = all); below K degrades, never hangs")
	keepalive := flag.Duration("keepalive", 0, "aggregator link health-check interval (0 = off)")
	heartbeat := flag.Duration("heartbeat", 0, "liveness heartbeat interval to every aggregator (match the fleet's -heartbeat; 0 = off)")
	wire := flag.String("wire", "binary", "fragment wire codec: binary (fixed-layout) or gob (legacy rollback)")
	flag.Parse()

	log.SetPrefix(fmt.Sprintf("deta-party[%s]: ", *id))
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	switch *wire {
	case "binary":
		transport.SetBinaryWire(true)
	case "gob":
		transport.SetBinaryWire(false)
	default:
		log.Fatalf("unknown -wire %q (want binary or gob)", *wire)
	}

	if *index < 0 || *index >= *parties {
		log.Fatalf("index %d out of range [0,%d)", *index, *parties)
	}

	mat, err := transport.LoadTLSMaterials(*tlsDir)
	if err != nil {
		log.Fatalf("loading TLS materials: %v", err)
	}
	dialCtx, cancelDial := context.WithTimeout(context.Background(), *dialTimeout)
	ap, err := dialAP(dialCtx, mat, *apAddr, *tlsName)
	if err != nil {
		cancelDial()
		log.Fatalf("dialing AP: %v", err)
	}

	// Dial every aggregator (with backoff — peers may still be starting),
	// in a stable order.
	clients, order, err := dialAggregators(dialCtx, mat, *aggSpec, *tlsName)
	cancelDial()
	if err != nil {
		log.Fatal(err)
	}
	if *keepalive > 0 {
		for _, a := range clients {
			a.C.EnableKeepAlive(*keepalive, *callTimeout)
		}
	}
	fleet := &core.Fleet{Clients: clients, Quorum: *aggQuorum, Timeout: *callTimeout}

	// Phase II: verify every aggregator's token in parallel before
	// registering. A failed *verification* aborts even under quorum.
	ctx := context.Background()
	tokenPubKey := func(aggID string) ([]byte, error) { return ap.TokenPubKey(ctx, aggID) }
	if err := fleet.VerifyAndRegisterAll(ctx, *id, tokenPubKey, attest.NewNonce, attest.VerifyChallenge); err != nil {
		log.Fatalf("refusing to train: %v", err)
	}
	log.Printf("verified and registered with %d aggregators", fleet.K())

	if *heartbeat > 0 {
		// Background liveness heartbeats: training (and its long local-
		// compute stretches) must not read as death to the aggregators'
		// liveness tracker. A heartbeat also readmits this party anywhere
		// it was evicted while unreachable. The process context gives the
		// loop an escape edge (goleak): main never cancels it today, but
		// the goroutine must not be structurally unstoppable.
		go heartbeatLoop(ctx, fleet, *id, *heartbeat)
	}

	// Key broker: register and fetch the shared permutation key.
	if err := ap.RegisterParty(ctx, *id); err != nil {
		log.Fatalf("broker registration: %v", err)
	}
	permKey, err := ap.PermKey(ctx, *id)
	if err != nil {
		log.Fatalf("fetching permutation key: %v", err)
	}
	// Fingerprint, never the key: parties can compare fp lines across logs
	// to confirm the broker issued everyone the same key, without any log
	// ever containing key bytes (enforced by the keytaint analyzer).
	log.Printf("permutation key received (fp %s)", rng.Fingerprint(permKey))
	shuffler, err := core.NewShuffler(permKey)
	if err != nil {
		log.Fatal(err)
	}

	// Local data: shard index of a shared synthetic MNIST-like dataset.
	spec := dataset.MNIST
	train, _ := dataset.TrainTest(spec, *parties**samples, 1, []byte(*dataSeed))
	shard := dataset.SplitIID(train, *parties, []byte(*dataSeed+"/split"))[*index]
	log.Printf("local shard: %d examples", shard.Len())

	build := func() *nn.Network { return nn.ConvNet8(spec.C, spec.H, spec.W, spec.Classes) }
	cfg := fl.Config{
		Mode: fl.FedAvg, Rounds: *rounds, LocalEpochs: *localEpochs,
		BatchSize: *batch, LR: *lr, Momentum: 0.9, Seed: []byte(*dataSeed + "/cfg"),
	}
	party := fl.NewParty(*id, build, shard, cfg)

	// Shared mapper: equal proportions across the fleet.
	model := build()
	mapper, err := core.NewMapper(model.NumParams(), core.EqualProportions(len(order)), []byte(*mapperSeed))
	if err != nil {
		log.Fatal(err)
	}

	// Initial model: shared seed.
	net := build()
	net.Init([]byte(*dataSeed + "/init"))
	global := net.Params()

	for round := 1; round <= *rounds; round++ {
		roundID, err := ap.RoundID(ctx, round)
		if err != nil {
			log.Fatalf("round %d: fetching round ID: %v", round, err)
		}
		update, loss, err := party.LocalUpdate(global, round)
		if err != nil {
			log.Fatalf("round %d: local training: %v", round, err)
		}
		frags, err := core.Transform(mapper, shuffler, update, roundID, !*noShuffle)
		if err != nil {
			log.Fatal(err)
		}
		// Fan the K fragment uploads out concurrently (quorum-tolerant),
		// re-driving the whole fan-out until the round deadline: uploads
		// are idempotent server-side, so a crashed-and-restarted
		// aggregator (journal recovery + Redial) is simply retried into.
		if err := retryStep(ctx, *roundTimeout, round, "upload", func(ctx context.Context) error {
			return fleet.UploadAll(ctx, round, *id, frags, float64(shard.Len()))
		}); err != nil {
			if errors.Is(err, core.ErrRoundAbandoned) {
				log.Printf("round %d: abandoned by the fleet; skipping: %v", round, err)
				for _, frag := range frags {
					tensor.PutVector(frag)
				}
				continue
			}
			log.Fatalf("round %d: upload: %v", round, err)
		}
		// Download aggregated fragments in parallel (the initiator fuses
		// once enough parties upload; DownloadAll polls until available).
		// An aggregator lost this round degrades to the party's own
		// fragment for its partition; a round the whole fleet abandoned
		// is skipped, leaving the global model unchanged.
		var merged []tensor.Vector
		if err := retryStep(ctx, *roundTimeout, round, "download", func(ctx context.Context) error {
			var derr error
			merged, derr = fleet.DownloadAll(ctx, round, *id, frags)
			return derr
		}); err != nil {
			if errors.Is(err, core.ErrRoundAbandoned) {
				log.Printf("round %d: abandoned by the fleet; skipping: %v", round, err)
				for _, frag := range frags {
					tensor.PutVector(frag)
				}
				continue
			}
			log.Fatalf("round %d: download: %v", round, err)
		}
		global, err = core.InverseTransform(mapper, shuffler, merged, roundID, !*noShuffle)
		if err != nil {
			log.Fatal(err)
		}
		// Hand the round's fragment buffers back to the tensor pool. Only the
		// upload-side frags go back: merged fragments may alias them (quorum
		// fallback substitutes the party's own fragment), and pooling one
		// buffer twice would hand it out twice.
		for _, frag := range frags {
			tensor.PutVector(frag)
		}
		log.Printf("round %d done: local train loss %.4f", round, loss)
	}
	log.Printf("training complete (%d rounds)", *rounds)
	for _, aggID := range order {
		log.Printf("link %s: %s", aggID, fleet.Stats()[aggID])
	}
}

// retryStep re-drives one round step (a whole fan-out) with jittered
// backoff until it succeeds or the round deadline expires. Safe because
// uploads are idempotent and downloads are reads. A verification failure
// is never retried — an unverifiable aggregator is an adversary.
func retryStep(ctx context.Context, timeout time.Duration, round int, what string, op func(ctx context.Context) error) error {
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	b := transport.Backoff{Initial: 20 * time.Millisecond, Max: time.Second}
	var last error
	for i := 0; ; i++ {
		if last = op(rctx); last == nil {
			return nil
		}
		if errors.Is(last, core.ErrVerificationFailed) {
			return last
		}
		if errors.Is(last, core.ErrRoundAbandoned) {
			// The fleet gave up on this round below quorum; retrying
			// cannot resurrect it — the round loop skips it instead.
			return last
		}
		log.Printf("round %d: %s failed (retrying): %v", round, what, last)
		select {
		case <-rctx.Done():
			return fmt.Errorf("%s: %w (last error: %v)", what, rctx.Err(), last)
		case <-clk.After(b.Delay(i)):
		}
	}
}

// heartbeatLoop keeps this party alive in every aggregator's liveness
// tracker while it trains. Best-effort fan-out: silence toward an
// unreachable aggregator is exactly what its tracker should observe.
func heartbeatLoop(ctx context.Context, fleet *core.Fleet, id string, interval time.Duration) {
	// Re-armed clk.After instead of a ticker: a heartbeat measured from
	// the previous beat's completion is fine (no catch-up semantics
	// wanted), and the clock seam keeps the loop drivable by FakeClock.
	for {
		select {
		case <-ctx.Done():
			return
		case <-clk.After(interval):
			acked, rejoinedAt := fleet.HeartbeatAll(ctx, id)
			if len(rejoinedAt) > 0 {
				log.Printf("heartbeat: rejoined at %v", rejoinedAt)
			}
			if acked == 0 {
				log.Printf("heartbeat: no aggregator reachable")
			}
		}
	}
}

func dialAP(ctx context.Context, mat *transport.TLSMaterials, addr, tlsName string) (*core.APClient, error) {
	c, err := mat.DialTLSBackoff(ctx, addr, tlsName, transport.Backoff{Attempts: transport.UnlimitedAttempts})
	if err != nil {
		return nil, err
	}
	return &core.APClient{C: c}, nil
}

func dialAggregators(ctx context.Context, mat *transport.TLSMaterials, spec, tlsName string) ([]*core.AggregatorClient, []string, error) {
	byID := make(map[string]*core.AggregatorClient)
	var order []string
	for _, entry := range strings.Split(spec, ",") {
		id, addr, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok {
			return nil, nil, fmt.Errorf("bad aggregator entry %q (want id=addr)", entry)
		}
		c, err := mat.DialTLSBackoff(ctx, addr, tlsName, transport.Backoff{Attempts: transport.UnlimitedAttempts})
		if err != nil {
			return nil, nil, fmt.Errorf("dialing %s at %s: %w", id, addr, err)
		}
		// Redial repairs the link transparently after the aggregator
		// crashes or restarts; the retry of the interrupted call stays
		// with the round loop (uploads are idempotent server-side).
		byID[id] = &core.AggregatorClient{ID: id, C: c, Redial: func(ctx context.Context) (net.Conn, error) {
			d := &tls.Dialer{Config: mat.ClientConfig(tlsName)}
			return d.DialContext(ctx, "tcp", addr)
		}}
		order = append(order, id)
	}
	sort.Strings(order)
	clients := make([]*core.AggregatorClient, len(order))
	for j, id := range order {
		clients[j] = byID[id]
	}
	return clients, order, nil
}
