package main

import (
	"context"
	"testing"
	"time"

	"deta/internal/core"
)

// Regression for a goleak finding: heartbeatLoop used to range over the
// ticker channel with no escape edge, so the goroutine could never exit.
// It must now return promptly when its context is cancelled.
func TestHeartbeatLoopStopsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		heartbeatLoop(ctx, &core.Fleet{}, "P1", time.Hour)
		close(done)
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("heartbeatLoop did not exit on context cancellation")
	}
}
