// Command deta-ap runs DeTA's control plane: the attestation proxy that
// verifies aggregator CVMs and provisions authentication tokens (Phase I),
// the simulated vendor endorsement/RAS role, and the key-broker service
// that dispatches the permutation key and per-round training identifiers.
//
// Start it first, then deta-aggregator instances, then deta-party
// instances:
//
//	deta-ap -listen 127.0.0.1:7000 -tls-dir ./tls
//
// The AP speaks only control-plane RPCs (registration, attestation,
// key/round dispatch), which stay on the gob codec; the fixed-layout
// binary fragment codec (-wire on parties and aggregators) never appears
// on this daemon's connections, so it takes no -wire flag. Round
// lifecycle and party liveness are likewise aggregator-side concerns
// (-round-deadline/-grace/-heartbeat on deta-aggregator, -heartbeat on
// deta-party): the AP is stateless about rounds beyond issuing their IDs,
// so evicted parties keep their broker registration and rejoin the
// aggregators directly on their next signal.
package main

import (
	"flag"
	"log"
	"os"

	"deta/internal/core"
	"deta/internal/transport"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7000", "address to serve the AP control plane on")
	tlsDir := flag.String("tls-dir", "./deta-tls", "directory for TLS materials (minted if missing)")
	permKeyBytes := flag.Int("perm-key-bytes", 32, "permutation key size in bytes (min 16)")
	host := flag.String("tls-host", "127.0.0.1", "host name/IP baked into the minted server certificate")
	flag.Parse()

	log.SetPrefix("deta-ap: ")
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	if _, err := os.Stat(*tlsDir); os.IsNotExist(err) {
		log.Printf("minting TLS materials in %s", *tlsDir)
		if err := transport.SaveTLSMaterials(*tlsDir, "deta-ap", []string{*host, "localhost"}); err != nil {
			log.Fatalf("minting TLS materials: %v", err)
		}
	}
	mat, err := transport.LoadTLSMaterials(*tlsDir)
	if err != nil {
		log.Fatalf("loading TLS materials: %v", err)
	}

	svc, err := core.NewAPService(core.OVMF, *permKeyBytes)
	if err != nil {
		log.Fatalf("building AP service: %v", err)
	}
	srv := transport.NewServer()
	svc.Serve(srv)

	ln, err := mat.ListenTLS(*listen)
	if err != nil {
		log.Fatalf("listening on %s: %v", *listen, err)
	}
	log.Printf("attestation proxy + key broker serving on %s (expected OVMF measurement fixed)", ln.Addr())
	if err := srv.Serve(ln); err != nil {
		log.Fatalf("serve: %v", err)
	}
}
