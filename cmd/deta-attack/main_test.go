package main

import "testing"

func TestPickScenarios(t *testing.T) {
	all, err := pickScenarios("all")
	if err != nil || len(all) != 6 {
		t.Fatalf("all: %d scenarios, %v", len(all), err)
	}
	one, err := pickScenarios("Full")
	if err != nil || len(one) != 1 || one[0].PartitionFactor != 1 {
		t.Fatalf("Full: %v, %v", one, err)
	}
	sh, err := pickScenarios("0.6+shuffle")
	if err != nil || len(sh) != 1 || !sh[0].Shuffle {
		t.Fatalf("0.6+shuffle: %v, %v", sh, err)
	}
	if _, err := pickScenarios("0.9"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
