// Command deta-attack plays the paper's §6 adversary on demand: it
// computes a victim party's gradient, applies a chosen DeTA transformation
// (what a breached aggregator would hold), runs a reconstruction attack,
// and reports the fidelity metrics.
//
//	deta-attack -attack dlg -scenario full          # baseline: attack works
//	deta-attack -attack dlg -scenario 0.6+shuffle   # DeTA: attack fails
//	deta-attack -attack ig  -scenario all -images 5
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"deta/internal/attack"
	"deta/internal/dataset"
	"deta/internal/experiments"
	"deta/internal/nn"
)

func main() {
	which := flag.String("attack", "dlg", "attack: dlg | idlg | ig")
	scenario := flag.String("scenario", "all", "scenario: full | 0.6 | 0.2 | full+shuffle | 0.6+shuffle | 0.2+shuffle | all")
	images := flag.Int("images", 5, "number of victim images")
	iters := flag.Int("iters", 300, "optimization iterations")
	side := flag.Int("side", 12, "victim image side length (divisible by 4; 8 for ig)")
	flag.Parse()

	log.SetPrefix("deta-attack: ")
	log.SetFlags(0)

	scenarios, err := pickScenarios(*scenario)
	if err != nil {
		log.Fatal(err)
	}

	spec := dataset.Spec{Name: "victim-data", C: 3, H: *side, W: *side, Classes: 100}
	data := dataset.Make(spec, *images, []byte("deta-attack-data"))

	var net *nn.Network
	switch *which {
	case "dlg", "idlg":
		net = nn.LeNetDLG(3, *side, *side, spec.Classes)
	case "ig":
		net = nn.ResNet18Lite(3, *side, *side, spec.Classes, [4]int{4, 8, 16, 32})
	default:
		log.Fatalf("unknown attack %q (want dlg | idlg | ig)", *which)
	}
	net.Init([]byte("deta-attack-model"))
	oracle := attack.NewOracle(net)

	results := make(map[string][]float64)
	for i := 0; i < data.Len(); i++ {
		sample := data.At(i)
		grad, err := oracle.VictimGradient(sample.X, sample.Label)
		if err != nil {
			log.Fatal(err)
		}
		for _, sc := range scenarios {
			obs, err := attack.Observe(grad, sc, []byte("deta-attack-mapper"), []byte(fmt.Sprintf("round-%d", i)))
			if err != nil {
				log.Fatal(err)
			}
			var res *attack.Result
			cfg := attack.DLGConfig{Iterations: *iters, LR: 0.3, Seed: []byte(fmt.Sprintf("img-%d", i))}
			switch *which {
			case "dlg":
				res, err = attack.DLG(oracle, obs, sample.X, sample.Label, cfg)
			case "idlg":
				res, err = attack.IDLG(oracle, obs, sample.X, sample.Label, cfg)
			case "ig":
				res, err = attack.IG(oracle, obs, sample.X, sample.Label, attack.IGConfig{
					Iterations: *iters, Restarts: 1, LR: 0.05, TVWeight: 1e-3,
					Channels: 3, Height: *side, Width: *side,
					Seed: []byte(fmt.Sprintf("img-%d", i)),
				})
			}
			if err != nil {
				log.Fatal(err)
			}
			metric := res.MSE
			if *which == "ig" {
				metric = res.CosineDist
			}
			results[sc.Name] = append(results[sc.Name], metric)
			fmt.Printf("image %d  scenario %-13s  MSE %.4g  cosine-dist %.4f", i, sc.Name, res.MSE, res.CosineDist)
			if res.InferredLabel >= 0 {
				fmt.Printf("  label %d (true %d)", res.InferredLabel, res.TrueLabel)
			}
			fmt.Println()
		}
	}
	fmt.Println()
	experiments.ReconstructionMSEStats(results).Render(os.Stdout)
}

func pickScenarios(name string) ([]attack.Scenario, error) {
	if name == "all" {
		return attack.TableScenarios, nil
	}
	for _, sc := range attack.TableScenarios {
		if strings.EqualFold(strings.ReplaceAll(sc.Name, "Shuffle", "shuffle"), name) ||
			strings.EqualFold(sc.Name, name) {
			return []attack.Scenario{sc}, nil
		}
	}
	return nil, fmt.Errorf("unknown scenario %q", name)
}
