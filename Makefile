# Standard entry points; scripts/check.sh is the single source of truth
# for the full verification gate.

.PHONY: build test race chaos bench lint lint-baseline check perf perf-baseline

build:
	go build ./...

# Project-specific static analysis (internal/lint): security, determinism,
# and concurrency invariants the type system can't see. Exits nonzero on
# any finding not recorded in lint-baseline.json (the acknowledged
# burn-down list; refresh with `make lint-baseline` only after triage).
lint:
	go run ./cmd/deta-lint -baseline lint-baseline.json ./...

lint-baseline:
	go run ./cmd/deta-lint -baseline-write lint-baseline.json ./...

test:
	go test ./...

race:
	go test -race ./...

# The chaos end-to-end tests: injected drops/delays/severs (fixed seed
# 0xDE7A) plus two aggregator kill+restarts mid-round, and the churn
# variant (party death + liveness evict + rejoin + aggregator restart);
# recovered/survivor models must be bit-identical.
chaos:
	go test -race -count=1 -run 'TestChaosRestartBitIdenticalModel' -v ./internal/core
	go test -race -count=1 -run 'TestChaosChurnEvictRejoinBitIdentical' -v ./internal/core

# Journal-overhead benchmarks recorded in EXPERIMENTS.md.
bench:
	go test -bench 'BenchmarkAppend' -run xxx ./internal/journal
	go test -bench 'BenchmarkUpload' -run xxx ./internal/core

# Tracked perf suite vs checked-in BENCH_*.json baselines (internal/perf);
# exits 4 on regression. `make perf-baseline` refreshes the baselines.
perf:
	go run ./cmd/deta-bench -perf -perf-baseline .

perf-baseline:
	go run ./cmd/deta-bench -perf -perf-baseline-write -perf-baseline .

check:
	sh scripts/check.sh
